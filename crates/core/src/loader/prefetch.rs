use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{bounded, Receiver};
use ppgnn_dataio::DataIoError;
use ppgnn_tensor::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::loader::{permutation, BatchSource, Loader, LoaderCounters, PpBatch};
use crate::preprocess::PrepropFeatures;

/// Generation 2: double-buffer prefetching (second half of Section 4.1).
///
/// A dedicated producer thread assembles batches and pushes them into a
/// **bounded channel of capacity 2** — the software double buffer. The
/// consumer (training loop) overlaps its compute with the producer's
/// assembly, which is precisely the pipelining Figure 6(c) illustrates; on
/// real hardware the two buffers live in GPU memory and the channel is a
/// pair of CUDA events.
///
/// The producer comes in two flavours:
///
/// * [`DoubleBufferLoader::new`] — the in-memory assembler (fused gathers
///   over a resident [`PrepropFeatures`], exactly like generation 1);
/// * [`DoubleBufferLoader::over_source`] — **any [`BatchSource`]**, which
///   is how gen-2 pipelining composes with gen-3 storage I/O: a
///   [`crate::loader::StorageChunkLoader`] or
///   [`crate::loader::ShardedStorageChunkLoader`] runs on the producer
///   thread, so chunk reads from the (sharded) feature store overlap
///   training compute. The source crosses into the producer thread each
///   epoch and is handed back when the epoch ends.
///
/// Producer-side failures are not silent: the channel carries
/// `Result<PpBatch, DataIoError>` (storage-backed producers surface I/O
/// errors batch-by-batch), and a producer thread that dies mid-epoch is
/// detected at join time. Either way the first error is latched,
/// [`DoubleBufferLoader::try_next_batch`] reports it, the infallible
/// [`Loader`] API ends the epoch, and [`Loader::take_error`] hands the
/// message to the trainer — the same contract as
/// [`crate::loader::StorageChunkLoader`].
#[derive(Debug)]
pub struct DoubleBufferLoader {
    producer: ProducerKind,
    rx: Option<Receiver<Result<PpBatch, DataIoError>>>,
    worker: Option<JoinHandle<EpochEnd>>,
    counters: LoaderCounters,
    /// First producer-side error of the epoch, parked for
    /// [`Loader::take_error`].
    error: Option<DataIoError>,
    /// Latched on the first failure and cleared only by
    /// [`Loader::start_epoch`]: a failed epoch must not resume and
    /// silently train on a stream with missing batches.
    failed: bool,
}

#[derive(Debug)]
enum ProducerKind {
    /// In-memory batch assembly (fused gathers) on the producer thread.
    Memory {
        data: Arc<PrepropFeatures>,
        batch_size: usize,
        rng: StdRng,
    },
    /// A fallible batch source driven on the producer thread. `None`
    /// while an epoch is running (the source is owned by the thread) or
    /// after a producer panic lost it.
    Source {
        source: Option<Box<dyn BatchSource>>,
        num_batches: usize,
    },
}

/// What the producer thread hands back when an epoch ends.
#[derive(Debug)]
enum EpochEnd {
    /// Per-epoch counter deltas of the in-memory assembler.
    Memory(LoaderCounters),
    /// The source, returned for the next epoch (its counters are
    /// cumulative).
    Source(Box<dyn BatchSource>),
}

impl DoubleBufferLoader {
    /// Creates a double-buffered loader over in-memory features.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size == 0` or `data` is empty.
    pub fn new(data: Arc<PrepropFeatures>, batch_size: usize, seed: u64) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        assert!(!data.is_empty(), "cannot iterate an empty partition");
        Self::with_producer(ProducerKind::Memory {
            data,
            batch_size,
            rng: StdRng::seed_from_u64(seed),
        })
    }

    /// Creates a double-buffered loader that runs `source` behind the
    /// producer thread — gen-2 pipelining over gen-3 storage I/O. The
    /// source's own epoch order and batch geometry are preserved; this
    /// wrapper only moves the reads off the training thread.
    pub fn over_source(source: Box<dyn BatchSource>) -> Self {
        let num_batches = source.batches_per_epoch();
        Self::with_producer(ProducerKind::Source {
            source: Some(source),
            num_batches,
        })
    }

    fn with_producer(producer: ProducerKind) -> Self {
        DoubleBufferLoader {
            producer,
            rx: None,
            worker: None,
            counters: LoaderCounters::default(),
            error: None,
            failed: false,
        }
    }

    fn reap_worker(&mut self) {
        if let Some(handle) = self.worker.take() {
            match handle.join() {
                Ok(EpochEnd::Memory(c)) => {
                    self.counters.gather_ops += c.gather_ops;
                    self.counters.bytes_assembled += c.bytes_assembled;
                    self.counters.batches += c.batches;
                }
                Ok(EpochEnd::Source(src)) => {
                    self.counters = src.source_counters();
                    if let ProducerKind::Source { source, .. } = &mut self.producer {
                        *source = Some(src);
                    }
                }
                Err(_) => {
                    // The producer died without finishing its epoch; a
                    // silent early end here would truncate the epoch the
                    // consumer believes it completed.
                    self.failed = true;
                    self.error.get_or_insert_with(|| {
                        DataIoError::Io("batch producer thread panicked mid-epoch".into())
                    });
                }
            }
        }
    }

    /// Fallible batch path: `Ok(None)` ends the epoch, `Err` surfaces the
    /// first producer-side failure. The failure is latched until
    /// [`Loader::start_epoch`], so a retrying caller cannot resume a
    /// stream with batches missing.
    ///
    /// # Errors
    ///
    /// Propagates [`DataIoError`] sent by the producer, or reports a
    /// producer thread that died before finishing the epoch.
    pub fn try_next_batch(&mut self) -> Result<Option<PpBatch>, DataIoError> {
        if self.failed {
            return Err(self.error.clone().unwrap_or_else(|| {
                DataIoError::Io("epoch already failed; start_epoch required".into())
            }));
        }
        let Some(rx) = self.rx.as_ref() else {
            return Ok(None);
        };
        match rx.recv() {
            Ok(Ok(batch)) => Ok(Some(batch)),
            Ok(Err(e)) => {
                self.rx = None;
                self.failed = true;
                self.error = Some(e.clone());
                self.reap_worker();
                Err(e)
            }
            Err(_) => {
                // Channel closed: the producer finished — or died. Joining
                // distinguishes the two and latches the error if so.
                self.rx = None;
                self.reap_worker();
                if self.failed {
                    Err(self
                        .error
                        .clone()
                        .expect("failed reap always parks an error"))
                } else {
                    Ok(None)
                }
            }
        }
    }
}

impl Loader for DoubleBufferLoader {
    fn start_epoch(&mut self) {
        // Drain any unfinished previous epoch first (ignoring its verdict:
        // the epoch is being abandoned either way). For source producers
        // this also recovers the source from the finished thread.
        self.rx = None;
        self.reap_worker();
        self.error = None;
        self.failed = false;

        // Capacity 2 = the double buffer: the producer runs at most two
        // batches ahead of the consumer.
        let (tx, rx) = bounded::<Result<PpBatch, DataIoError>>(2);
        let handle = match &mut self.producer {
            ProducerKind::Memory {
                data,
                batch_size,
                rng,
            } => {
                let order = permutation(data.len(), rng);
                let data = Arc::clone(data);
                let batch_size = *batch_size;
                std::thread::spawn(move || {
                    let mut counters = LoaderCounters::default();
                    let f = data.hops[0].cols();
                    let mut cursor = 0;
                    while cursor < order.len() {
                        let end = (cursor + batch_size).min(order.len());
                        let indices = order[cursor..end].to_vec();
                        cursor = end;
                        let mut hops = Vec::with_capacity(data.hops.len());
                        for src in &data.hops {
                            let mut stage = Matrix::zeros(indices.len(), f);
                            src.gather_rows_into(&indices, &mut stage);
                            counters.gather_ops += 1;
                            counters.bytes_assembled += (indices.len() * f * 4) as u64;
                            hops.push(stage);
                        }
                        let labels = indices.iter().map(|&i| data.labels[i]).collect();
                        counters.batches += 1;
                        if tx
                            .send(Ok(PpBatch {
                                indices,
                                hops,
                                labels,
                            }))
                            .is_err()
                        {
                            break; // consumer dropped the epoch early
                        }
                    }
                    EpochEnd::Memory(counters)
                })
            }
            ProducerKind::Source { source, .. } => {
                let Some(mut source) = source.take() else {
                    // A producer panic lost the source; the loader cannot
                    // run further epochs.
                    self.failed = true;
                    self.error.get_or_insert_with(|| {
                        DataIoError::Io(
                            "batch source lost to a producer panic; recreate the loader".into(),
                        )
                    });
                    return;
                };
                std::thread::spawn(move || {
                    source.begin_epoch();
                    loop {
                        match source.try_next() {
                            Ok(Some(batch)) => {
                                if tx.send(Ok(batch)).is_err() {
                                    break; // consumer dropped the epoch early
                                }
                            }
                            Ok(None) => break,
                            Err(e) => {
                                let _ = tx.send(Err(e));
                                break;
                            }
                        }
                    }
                    EpochEnd::Source(source)
                })
            }
        };
        self.rx = Some(rx);
        self.worker = Some(handle);
    }

    fn next_batch(&mut self) -> Option<PpBatch> {
        if self.failed {
            return None;
        }
        // An Err is latched by try_next_batch and parked for take_error.
        self.try_next_batch().unwrap_or_default()
    }

    fn num_batches(&self) -> usize {
        match &self.producer {
            ProducerKind::Memory {
                data, batch_size, ..
            } => data.len().div_ceil(*batch_size),
            ProducerKind::Source { num_batches, .. } => *num_batches,
        }
    }

    fn counters(&self) -> LoaderCounters {
        self.counters
    }

    fn take_error(&mut self) -> Option<String> {
        self.error.take().map(|e| e.to_string())
    }

    fn name(&self) -> &'static str {
        "double-buffer"
    }
}

impl Drop for DoubleBufferLoader {
    fn drop(&mut self) {
        self.rx = None; // closes the channel, unblocking the producer
        self.reap_worker();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loader::tests_support::tiny_features;
    use crate::loader::{FusedGatherLoader, StorageChunkLoader};
    use ppgnn_dataio::{AccessPath, FeatureStoreWriter, StoreMeta};

    #[test]
    fn identical_stream_to_fused_for_equal_seed() {
        let data = Arc::new(tiny_features(29, 2, 3));
        let mut a = FusedGatherLoader::new(data.clone(), 6, 9);
        let mut b = DoubleBufferLoader::new(data, 6, 9);
        a.start_epoch();
        b.start_epoch();
        loop {
            match (a.next_batch(), b.next_batch()) {
                (None, None) => break,
                (Some(x), Some(y)) => {
                    assert_eq!(x.indices, y.indices);
                    assert_eq!(x.hops, y.hops);
                    assert_eq!(x.labels, y.labels);
                }
                _ => panic!("loaders disagree on batch count"),
            }
        }
    }

    #[test]
    fn multiple_epochs_work_and_reshuffle() {
        let data = Arc::new(tiny_features(40, 1, 2));
        let mut l = DoubleBufferLoader::new(data, 40, 4);
        l.start_epoch();
        let e1 = l.next_batch().unwrap().indices;
        assert!(l.next_batch().is_none());
        l.start_epoch();
        let e2 = l.next_batch().unwrap().indices;
        assert!(l.next_batch().is_none());
        assert_ne!(e1, e2);
        let c = l.counters();
        assert_eq!(c.batches, 2);
    }

    #[test]
    fn abandoning_an_epoch_does_not_deadlock() {
        let data = Arc::new(tiny_features(100, 1, 2));
        let mut l = DoubleBufferLoader::new(data, 5, 5);
        l.start_epoch();
        let _ = l.next_batch(); // take one of twenty, then abandon
        l.start_epoch(); // must not hang on the old producer
        let mut count = 0;
        while l.next_batch().is_some() {
            count += 1;
        }
        assert_eq!(count, 20);
    }

    #[test]
    fn drop_mid_epoch_terminates_worker() {
        let data = Arc::new(tiny_features(100, 1, 2));
        let mut l = DoubleBufferLoader::new(data, 5, 6);
        l.start_epoch();
        let _ = l.next_batch();
        drop(l); // must join cleanly without hanging the test
    }

    #[test]
    fn clean_epoch_leaves_no_error() {
        let data = Arc::new(tiny_features(20, 1, 2));
        let mut l = DoubleBufferLoader::new(data, 6, 1);
        l.start_epoch();
        while l.try_next_batch().unwrap().is_some() {}
        assert!(l.take_error().is_none());
    }

    #[test]
    fn dead_producer_fails_the_epoch_instead_of_ending_it_silently() {
        // Corrupt partition: more labels than feature rows. `len()` follows
        // the labels, so the shuffled index stream reaches past the hop
        // matrices and the producer panics mid-gather — the in-memory
        // stand-in for a producer-side failure.
        let mut features = tiny_features(8, 1, 2);
        features.labels.extend(8..30u32);
        features.node_ids.extend(8..30usize);
        let data = Arc::new(features);
        let mut l = DoubleBufferLoader::new(data, 8, 3);
        l.start_epoch();
        // The fallible path must surface an error, not a clean epoch end.
        let mut result = l.try_next_batch();
        while let Ok(Some(_)) = result {
            result = l.try_next_batch();
        }
        assert!(result.is_err(), "dead producer must surface an error");
        // The failure is latched: retries keep failing, the infallible
        // path stays ended, and the error is parked for the trainer.
        assert!(l.try_next_batch().is_err());
        assert!(l.next_batch().is_none());
        let msg = l.take_error().expect("error surfaced via take_error");
        assert!(msg.contains("producer"), "unexpected message: {msg}");
        assert!(l.take_error().is_none(), "take_error drains the slot");
    }

    #[test]
    fn start_epoch_clears_a_latched_failure() {
        let mut features = tiny_features(8, 1, 2);
        features.labels.extend(8..30u32);
        features.node_ids.extend(8..30usize);
        let data = Arc::new(features);
        let mut l = DoubleBufferLoader::new(data, 8, 3);
        l.start_epoch();
        while l.next_batch().is_some() {}
        assert!(l.error.is_some() || l.failed);
        l.start_epoch();
        assert!(l.take_error().is_none(), "start_epoch resets the error");
        // The fresh epoch fails again (same corrupt data), proving the
        // reset re-arms detection rather than suppressing it.
        while l.next_batch().is_some() {}
        assert!(l.take_error().is_some());
    }

    // ---- storage-backed producer (gen-2 ∘ gen-3 composition) ----

    fn build_store(tag: &str, rows: usize, chunk: usize) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("ppgnn-dbsrc-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let meta = StoreMeta {
            dataset: "t".into(),
            num_hops: 2,
            rows,
            cols: 3,
            chunk_size: chunk,
            dtype: ppgnn_tensor::StoreDtype::F32,
        };
        let mut w = FeatureStoreWriter::create(&dir, meta).unwrap();
        for k in 0..2 {
            let m = Matrix::from_fn(rows, 3, move |r, c| (k * 1_000_000 + r * 1_000 + c) as f32);
            w.write_hop(k, &m).unwrap();
        }
        w.finish().unwrap();
        dir
    }

    fn storage_source(dir: &std::path::Path, batch: usize, seed: u64) -> StorageChunkLoader {
        let store = ppgnn_dataio::FeatureStore::open(dir).unwrap();
        let labels: Vec<u32> = (0..store.meta().rows).map(|r| (r % 3) as u32).collect();
        StorageChunkLoader::new(store, labels, batch, AccessPath::Direct, seed)
    }

    #[test]
    fn storage_source_stream_is_identical_to_the_bare_loader() {
        let dir = build_store("ident", 25, 4);
        let mut bare = storage_source(&dir, 7, 11);
        let mut buffered = DoubleBufferLoader::over_source(Box::new(storage_source(&dir, 7, 11)));
        assert_eq!(Loader::num_batches(&bare), buffered.num_batches());
        for _ in 0..2 {
            Loader::start_epoch(&mut bare);
            buffered.start_epoch();
            loop {
                match (bare.next_batch(), buffered.next_batch()) {
                    (None, None) => break,
                    (Some(x), Some(y)) => {
                        assert_eq!(x.indices, y.indices);
                        assert_eq!(x.hops, y.hops);
                        assert_eq!(x.labels, y.labels);
                    }
                    _ => panic!("bare and buffered streams disagree on batch count"),
                }
            }
        }
        // The buffered loader's counters mirror the source's cumulative
        // counters once the epoch drains.
        assert_eq!(buffered.counters(), Loader::counters(&bare));
        assert!(buffered.take_error().is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn storage_source_errors_propagate_through_the_channel() {
        let dir = build_store("err", 32, 4);
        let mut l = DoubleBufferLoader::over_source(Box::new(storage_source(&dir, 4, 2)));
        l.start_epoch();
        assert!(l.next_batch().is_some());
        // Truncate a hop file mid-epoch: a future chunk read fails on the
        // producer thread and must surface through the channel.
        let path = dir.join("hop_1.ppgt");
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        while l.next_batch().is_some() {}
        let msg = l.take_error().expect("storage failure must surface");
        assert!(!msg.is_empty());
        // The recovered source re-arms on the next epoch (and fails again
        // on the still-truncated store, from a clean slate).
        l.start_epoch();
        while l.next_batch().is_some() {}
        assert!(l.take_error().is_some());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn abandoned_storage_epoch_recovers_the_source() {
        let dir = build_store("abandon", 64, 4);
        let mut l = DoubleBufferLoader::over_source(Box::new(storage_source(&dir, 4, 3)));
        l.start_epoch();
        let _ = l.next_batch(); // take one batch, then abandon the epoch
        l.start_epoch(); // must recover the source and restart cleanly
        let mut rows = 0;
        while let Some(b) = l.next_batch() {
            rows += b.len();
        }
        assert_eq!(rows, 64, "fresh epoch must cover every row");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
