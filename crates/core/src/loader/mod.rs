//! The four data-loader generations of Section 4.
//!
//! All loaders yield the same [`PpBatch`] stream for a fixed seed (pinned
//! by the `loader_equivalence` integration test), so swapping generations
//! changes *how* bytes move, never *what* the model sees — except chunk
//! reshuffling with `chunk_size > 1`, which is the paper's deliberate
//! relaxation of SGD-RR (Section 4.2, accuracy impact studied in Figure 8).
//!
//! | Generation | Module | Mechanism |
//! |---|---|---|
//! | 0 baseline | [`BaselineLoader`] | one copy **per row** (PyTorch-DataLoader behaviour) |
//! | 1 fused | [`FusedGatherLoader`] | one fused index op per batch into a reused staging buffer |
//! | 2 prefetch | [`DoubleBufferLoader`] | producer thread + bounded(2) channel (the double buffer) |
//! | 3 chunked | [`ChunkReshuffleLoader`] | chunk-level shuffle, contiguous chunk copies |
//! | 3s storage | [`StorageChunkLoader`] | chunk reads from the on-disk feature store |
//! | 3p sharded | [`ShardedStorageChunkLoader`] | chunk reads fanned out across partition stores |
//!
//! Generations compose: [`DoubleBufferLoader::over_source`] runs any
//! [`BatchSource`] (the storage-backed chunk loaders implement it) behind
//! the gen-2 producer thread, so chunk I/O overlaps training compute.

mod baseline;
mod chunk;
mod fused;
mod prefetch;
mod sharded;
mod storage;

pub use baseline::BaselineLoader;
pub use chunk::ChunkReshuffleLoader;
pub use fused::FusedGatherLoader;
pub use prefetch::DoubleBufferLoader;
pub use sharded::ShardedStorageChunkLoader;
pub use storage::StorageChunkLoader;

use ppgnn_dataio::DataIoError;

use ppgnn_tensor::Matrix;
use rand::rngs::StdRng;
use rand::Rng;

/// One training minibatch: hop features and labels for `indices` rows of
/// the training partition.
#[derive(Debug, Clone, PartialEq)]
pub struct PpBatch {
    /// Row indices (into the training partition) this batch covers.
    pub indices: Vec<usize>,
    /// `R + 1` hop matrices, `indices.len() x F` each.
    pub hops: Vec<Matrix>,
    /// Labels aligned with rows.
    pub labels: Vec<u32>,
}

impl PpBatch {
    /// Number of examples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// `true` for an empty batch (never yielded by loaders).
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }
}

/// Work counters a loader accumulates over an epoch — the measured
/// quantities the performance plane replays (ops ↔ kernel launches,
/// bytes ↔ bandwidth × time).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LoaderCounters {
    /// Gather/copy operations issued (per-row for the baseline, per-hop
    /// for fused generations, per-chunk for chunked generations).
    pub gather_ops: u64,
    /// Feature bytes assembled.
    pub bytes_assembled: u64,
    /// Batches yielded.
    pub batches: u64,
}

/// A PP-GNN minibatch source.
///
/// Usage per epoch: call [`Loader::start_epoch`], then drain
/// [`Loader::next_batch`] until `None`.
pub trait Loader {
    /// Begins a new epoch (reshuffles indices; may spawn worker threads).
    fn start_epoch(&mut self);

    /// Yields the next batch, or `None` when the epoch is exhausted.
    fn next_batch(&mut self) -> Option<PpBatch>;

    /// Batches per epoch (including a trailing partial batch).
    fn num_batches(&self) -> usize;

    /// Accumulated work counters.
    fn counters(&self) -> LoaderCounters;

    /// Takes the error (if any) that ended the current epoch early.
    ///
    /// Synchronous in-memory loaders cannot fail and return `None` (the
    /// default). Storage-backed loaders park the first I/O failure here
    /// after [`Loader::next_batch`] returns `None`, and threaded loaders
    /// ([`DoubleBufferLoader`]) park producer-side failures the same way;
    /// the trainer checks this slot when the epoch drains so a truncated
    /// store or dead producer fails the run cleanly instead of being
    /// mistaken for a completed epoch.
    fn take_error(&mut self) -> Option<String> {
        None
    }

    /// Stable display name.
    fn name(&self) -> &'static str;
}

/// A fallible epoch-batched source that can run behind the
/// [`DoubleBufferLoader`] producer thread.
///
/// This is the composition seam between the generation-2 prefetch
/// pipeline and the generation-3 storage loaders: the producer thread
/// drives `try_next_batch` and forwards each `Result` over the bounded
/// channel, so storage errors propagate batch-by-batch instead of killing
/// the producer. Implementations must be `Send` (the source crosses into
/// the producer thread each epoch and is handed back when it ends).
/// Method names are deliberately distinct from [`Loader`]'s so types
/// implementing both stay unambiguous at call sites.
pub trait BatchSource: Send + std::fmt::Debug {
    /// Begins a new epoch (reshuffles the read order).
    fn begin_epoch(&mut self);

    /// Yields the next batch: `Ok(None)` ends the epoch, `Err` surfaces a
    /// storage failure.
    ///
    /// # Errors
    ///
    /// Propagates [`DataIoError`] from the underlying reads.
    fn try_next(&mut self) -> Result<Option<PpBatch>, DataIoError>;

    /// Batches per epoch (including a trailing partial batch).
    fn batches_per_epoch(&self) -> usize;

    /// Accumulated work counters.
    fn source_counters(&self) -> LoaderCounters;
}

/// One read-but-not-fully-emitted chunk: its rows' global ids (in stored
/// order) and one matrix per hop.
#[derive(Debug)]
pub(crate) struct PendingChunk {
    pub(crate) rows: Vec<usize>,
    pub(crate) hops: Vec<Matrix>,
}

/// Carries rows across batch boundaries for the chunk-reading storage
/// loaders, so `batch_size` need not divide `chunk_size`: read chunks sit
/// untouched in a deque and a row cursor walks the front chunk, so
/// assembling a batch copies exactly `batch_size` rows — never the whole
/// pending buffer (the O(pending²) re-stacking bug class this machinery
/// replaced). Shared by [`StorageChunkLoader`] and
/// [`ShardedStorageChunkLoader`] so a fix lands in both.
#[derive(Debug, Default)]
pub(crate) struct ChunkBatcher {
    pending: std::collections::VecDeque<PendingChunk>,
    /// Rows of `pending.front()` already emitted.
    cursor: usize,
    /// Total unemitted rows across `pending` (accounting for `cursor`).
    pending_rows: usize,
}

impl ChunkBatcher {
    /// Drops all carried rows (a new epoch).
    pub(crate) fn reset(&mut self) {
        self.pending.clear();
        self.cursor = 0;
        self.pending_rows = 0;
    }

    /// Unemitted rows currently buffered.
    pub(crate) fn pending_rows(&self) -> usize {
        self.pending_rows
    }

    /// Buffers one freshly read chunk.
    pub(crate) fn push(&mut self, chunk: PendingChunk) {
        self.pending_rows += chunk.rows.len();
        self.pending.push_back(chunk);
    }

    /// Assembles exactly `take` rows (`take <= pending_rows()`) into one
    /// `take × cols` matrix per hop plus the rows' global indices, with
    /// one contiguous copy per (hop, chunk segment).
    pub(crate) fn assemble(
        &mut self,
        take: usize,
        num_hops: usize,
        cols: usize,
    ) -> (Vec<Matrix>, Vec<usize>) {
        debug_assert!(
            take <= self.pending_rows,
            "cannot assemble more than buffered"
        );
        let mut hops: Vec<Matrix> = (0..num_hops).map(|_| Matrix::zeros(take, cols)).collect();
        let mut indices = Vec::with_capacity(take);
        let mut filled = 0;
        while filled < take {
            let chunk = self.pending.front().expect("pending_rows > 0");
            let avail = chunk.rows.len() - self.cursor;
            let run = avail.min(take - filled);
            for (out, src) in hops.iter_mut().zip(&chunk.hops) {
                out.as_mut_slice()[filled * cols..(filled + run) * cols].copy_from_slice(
                    &src.as_slice()[self.cursor * cols..(self.cursor + run) * cols],
                );
            }
            indices.extend_from_slice(&chunk.rows[self.cursor..self.cursor + run]);
            filled += run;
            self.cursor += run;
            if self.cursor == chunk.rows.len() {
                self.pending.pop_front();
                self.cursor = 0;
            }
        }
        self.pending_rows -= take;
        (hops, indices)
    }
}

/// Fisher–Yates permutation of `0..n` — shared by every loader so equal
/// seeds give equal batch streams (SGD-RR order).
pub(crate) fn permutation(n: usize, rng: &mut StdRng) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.random_range(0..=i);
        idx.swap(i, j);
    }
    idx
}

/// Chunk-blocked permutation: shuffles **chunk ids** with the same
/// Fisher–Yates, then expands to row indices. With `chunk_size == 1` this
/// is exactly [`permutation`] — SGD-CR degenerates to SGD-RR, which the
/// tests assert.
pub(crate) fn chunk_permutation(n: usize, chunk_size: usize, rng: &mut StdRng) -> Vec<usize> {
    assert!(chunk_size > 0, "chunk size must be positive");
    let num_chunks = n.div_ceil(chunk_size);
    let chunk_order = permutation(num_chunks, rng);
    let mut out = Vec::with_capacity(n);
    for c in chunk_order {
        let start = c * chunk_size;
        let end = (start + chunk_size).min(n);
        out.extend(start..end);
    }
    out
}

/// Shared fixtures for loader unit tests.
#[cfg(test)]
pub(crate) mod tests_support {
    use ppgnn_tensor::Matrix;

    use crate::preprocess::PrepropFeatures;

    /// A deterministic partition of `n` rows, `hops + 1` hop matrices of
    /// width `f`; cell `(k, r, c) = k·10⁶ + r·10³ + c`.
    pub(crate) fn tiny_features(n: usize, hops: usize, f: usize) -> PrepropFeatures {
        PrepropFeatures {
            hops: (0..=hops)
                .map(|k| Matrix::from_fn(n, f, move |r, c| (k * 1_000_000 + r * 1_000 + c) as f32))
                .collect(),
            labels: (0..n).map(|r| (r % 5) as u32).collect(),
            node_ids: (0..n).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn permutation_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(1);
        let p = permutation(100, &mut rng);
        let mut sorted = p.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn chunk_permutation_keeps_chunks_contiguous() {
        let mut rng = StdRng::seed_from_u64(2);
        let p = chunk_permutation(10, 3, &mut rng);
        assert_eq!(p.len(), 10);
        // every aligned chunk appears as a contiguous run
        for run in p.chunks(3) {
            for w in run.windows(2) {
                if w[0] % 3 != 2 && w[0] / 3 == w[1] / 3 {
                    assert_eq!(w[1], w[0] + 1);
                }
            }
        }
        let mut sorted = p;
        sorted.sort_unstable();
        assert_eq!(sorted, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn chunk_size_one_equals_rr() {
        let p1 = permutation(50, &mut StdRng::seed_from_u64(7));
        let p2 = chunk_permutation(50, 1, &mut StdRng::seed_from_u64(7));
        assert_eq!(p1, p2);
    }

    #[test]
    fn chunk_size_n_is_identity_modulo_rotation() {
        let mut rng = StdRng::seed_from_u64(3);
        let p = chunk_permutation(10, 10, &mut rng);
        assert_eq!(p, (0..10).collect::<Vec<_>>());
    }
}
