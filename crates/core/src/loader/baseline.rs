use std::sync::Arc;

use ppgnn_tensor::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::loader::{permutation, Loader, LoaderCounters, PpBatch};
use crate::preprocess::PrepropFeatures;

/// Generation 0: the PyTorch-DataLoader-style baseline.
///
/// Assembles every batch with **one copy per (row, hop)** — the per-sample
/// `__getitem__` pattern whose per-operation overhead Figure 6(a) shows
/// dominating vanilla PP-GNN training. Functionally identical to every
/// other loader; only the work pattern (and therefore the counters)
/// differs.
#[derive(Debug)]
pub struct BaselineLoader {
    data: Arc<PrepropFeatures>,
    batch_size: usize,
    rng: StdRng,
    order: Vec<usize>,
    cursor: usize,
    counters: LoaderCounters,
}

impl BaselineLoader {
    /// Creates a baseline loader over `data` with the given batch size and
    /// shuffle seed.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size == 0` or `data` is empty.
    pub fn new(data: Arc<PrepropFeatures>, batch_size: usize, seed: u64) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        assert!(!data.is_empty(), "cannot iterate an empty partition");
        BaselineLoader {
            data,
            batch_size,
            rng: StdRng::seed_from_u64(seed),
            order: Vec::new(),
            cursor: 0,
            counters: LoaderCounters::default(),
        }
    }
}

impl Loader for BaselineLoader {
    fn start_epoch(&mut self) {
        self.order = permutation(self.data.len(), &mut self.rng);
        self.cursor = 0;
    }

    fn next_batch(&mut self) -> Option<PpBatch> {
        if self.cursor >= self.order.len() {
            return None;
        }
        let end = (self.cursor + self.batch_size).min(self.order.len());
        let indices = self.order[self.cursor..end].to_vec();
        self.cursor = end;

        let f = self.data.hops[0].cols();
        let mut hops: Vec<Matrix> = self
            .data
            .hops
            .iter()
            .map(|_| Matrix::zeros(indices.len(), f))
            .collect();
        // Deliberately row-at-a-time: one "operation" per (row, hop).
        for (k, (src, dst)) in self.data.hops.iter().zip(hops.iter_mut()).enumerate() {
            for (out_row, &idx) in indices.iter().enumerate() {
                dst.row_mut(out_row).copy_from_slice(src.row(idx));
                self.counters.gather_ops += 1;
                self.counters.bytes_assembled += (f * 4) as u64;
            }
            let _ = k;
        }
        let labels = indices.iter().map(|&i| self.data.labels[i]).collect();
        self.counters.batches += 1;
        Some(PpBatch {
            indices,
            hops,
            labels,
        })
    }

    fn num_batches(&self) -> usize {
        self.data.len().div_ceil(self.batch_size)
    }

    fn counters(&self) -> LoaderCounters {
        self.counters
    }

    fn name(&self) -> &'static str {
        "baseline"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loader::tests_support::tiny_features;

    #[test]
    fn covers_every_row_exactly_once_per_epoch() {
        let data = Arc::new(tiny_features(23, 3, 2));
        let mut l = BaselineLoader::new(data, 5, 0);
        l.start_epoch();
        let mut seen = Vec::new();
        while let Some(b) = l.next_batch() {
            assert!(b.len() <= 5);
            seen.extend(b.indices);
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..23).collect::<Vec<_>>());
        assert_eq!(l.num_batches(), 5);
    }

    #[test]
    fn batch_contents_match_source_rows() {
        let data = Arc::new(tiny_features(10, 2, 3));
        let mut l = BaselineLoader::new(data.clone(), 4, 1);
        l.start_epoch();
        let b = l.next_batch().unwrap();
        for (k, hop) in b.hops.iter().enumerate() {
            for (r, &idx) in b.indices.iter().enumerate() {
                assert_eq!(hop.row(r), data.hops[k].row(idx));
            }
        }
        for (r, &idx) in b.indices.iter().enumerate() {
            assert_eq!(b.labels[r], data.labels[idx]);
        }
    }

    #[test]
    fn counters_reflect_per_row_ops() {
        let data = Arc::new(tiny_features(8, 2, 4));
        let mut l = BaselineLoader::new(data, 8, 2);
        l.start_epoch();
        l.next_batch().unwrap();
        let c = l.counters();
        assert_eq!(c.gather_ops, 8 * 3); // rows × (hops+1)
        assert_eq!(c.batches, 1);
    }

    #[test]
    fn epochs_reshuffle() {
        let data = Arc::new(tiny_features(64, 1, 2));
        let mut l = BaselineLoader::new(data, 64, 3);
        l.start_epoch();
        let first = l.next_batch().unwrap().indices;
        l.start_epoch();
        let second = l.next_batch().unwrap().indices;
        assert_ne!(first, second, "consecutive epochs should differ");
    }
}
