//! The automated training-configuration system (Section 5).
//!
//! Given the hardware description and the expanded input size, decide
//! **where the data lives** and **which training method runs**:
//!
//! | Condition | Placement | Method |
//! |---|---|---|
//! | fits in (aggregate) GPU memory alongside the model | GPU | SGD-RR (+ double buffer); chunk reshuffling adds nothing at HBM bandwidth |
//! | fits in host memory | Host | SGD-RR by default; SGD-CR when the user opts in (CR requires pinning the whole input) |
//! | exceeds host memory | Storage (GPUDirect) | SGD-CR only — SGD-RR would issue per-row random reads |
//!
//! The model's peak memory requirement comes from a PaGraph-style one-shot
//! probe ([`probe_model_peak_bytes`]): run a single batch and measure what
//! training needs beyond the input data.

use ppgnn_memsim::{HardwareSpec, Placement};

/// Training method chosen by the planner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// Stochastic gradient descent with random reshuffling (row-level).
    SgdRr,
    /// Chunk reshuffling (Section 4.2).
    SgdCr,
}

impl Method {
    /// Display name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            Method::SgdRr => "sgd-rr",
            Method::SgdCr => "sgd-cr",
        }
    }
}

/// The planner's decision.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainingPlan {
    /// Where the expanded input is placed.
    pub placement: Placement,
    /// Training method.
    pub method: Method,
    /// GPUs the plan uses (input may be sharded across them).
    pub num_gpus: usize,
    /// Bytes of host memory that must be pinned for non-blocking transfer.
    pub pinned_host_bytes: u64,
    /// Human-readable justification (surfaced by the harness).
    pub reason: String,
}

/// Planner options the user can override.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AutoConfig {
    /// Opt in to chunk reshuffling for host-resident data (the paper's
    /// default is SGD-RR there, to avoid pinning the whole input).
    pub prefer_chunk_reshuffle_on_host: bool,
    /// Fraction of each memory pool the planner is allowed to fill.
    pub memory_headroom: f64,
}

impl Default for AutoConfig {
    fn default() -> Self {
        AutoConfig {
            prefer_chunk_reshuffle_on_host: false,
            memory_headroom: 0.9,
        }
    }
}

impl AutoConfig {
    /// Decides placement and method for an input of `input_bytes` and a
    /// model needing `model_peak_bytes` of GPU memory per device.
    ///
    /// # Panics
    ///
    /// Panics if `spec` fails validation or `memory_headroom ∉ (0, 1]`.
    pub fn plan(
        &self,
        spec: &HardwareSpec,
        input_bytes: u64,
        model_peak_bytes: u64,
    ) -> TrainingPlan {
        spec.validate().expect("invalid hardware spec");
        assert!(
            self.memory_headroom > 0.0 && self.memory_headroom <= 1.0,
            "memory headroom must be in (0, 1]"
        );
        let usable_gpu = ((spec.gpu_mem_bytes as f64 * self.memory_headroom) as u64)
            .saturating_sub(model_peak_bytes);
        // Sharding across GPUs is not free space: locality-aware fetching
        // (Yang & Cong 2019, the Section 5 policy) replicates hot rows, so
        // only a fraction of the aggregate capacity is usable for the
        // partitioned input.
        const SHARD_EFFICIENCY: f64 = 0.75;
        let usable_gpu_total = (usable_gpu as f64 * spec.num_gpus as f64 * SHARD_EFFICIENCY) as u64;
        let usable_host = (spec.host_mem_bytes as f64 * self.memory_headroom) as u64;

        if input_bytes <= usable_gpu {
            return TrainingPlan {
                placement: Placement::Gpu,
                method: Method::SgdRr,
                num_gpus: 1,
                pinned_host_bytes: 0,
                reason: format!(
                    "input ({input_bytes} B) fits one GPU's free memory ({usable_gpu} B); \
                     SGD-RR with double-buffer prefetching"
                ),
            };
        }
        if input_bytes <= usable_gpu_total {
            return TrainingPlan {
                placement: Placement::Gpu,
                method: Method::SgdRr,
                num_gpus: spec.num_gpus,
                pinned_host_bytes: 0,
                reason: format!(
                    "input ({input_bytes} B) fits across {} GPUs with locality-aware \
                     fetching; SGD-RR",
                    spec.num_gpus
                ),
            };
        }
        if input_bytes <= usable_host {
            let (method, pinned) = if self.prefer_chunk_reshuffle_on_host {
                (Method::SgdCr, input_bytes)
            } else {
                (Method::SgdRr, 0)
            };
            return TrainingPlan {
                placement: Placement::Host,
                method,
                num_gpus: spec.num_gpus,
                pinned_host_bytes: pinned,
                reason: format!(
                    "input ({input_bytes} B) exceeds GPU memory but fits host memory \
                     ({usable_host} B); {} ({})",
                    method.name(),
                    if pinned > 0 {
                        "whole input pinned for non-blocking chunk transfers"
                    } else {
                        "default avoids pinning the full input"
                    }
                ),
            };
        }
        TrainingPlan {
            placement: Placement::Ssd,
            method: Method::SgdCr,
            num_gpus: 1,
            pinned_host_bytes: 0,
            reason: format!(
                "input ({input_bytes} B) exceeds host memory ({usable_host} B); \
                 GPUDirect storage with chunk reshuffling (SGD-RR would issue \
                 per-row random reads)"
            ),
        }
    }
}

/// PaGraph-style peak-memory probe: estimates the GPU bytes one training
/// step needs beyond the resident input — parameters (+gradients, +Adam
/// moments) and the activations of a `batch_size` minibatch.
///
/// `param_count` is the model's scalar parameter count,
/// `activation_floats_per_example` the per-example activation footprint
/// (roughly `Σ layer widths`, times `hops + 1` for token models).
pub fn probe_model_peak_bytes(
    param_count: usize,
    batch_size: usize,
    activation_floats_per_example: usize,
) -> u64 {
    // params + grads + Adam m/v = 4 copies, f32
    let params = 4 * param_count as u64 * 4;
    // double-buffered batch activations
    let acts = 2 * (batch_size * activation_floats_per_example) as u64 * 4;
    params + acts
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> HardwareSpec {
        HardwareSpec::tiny() // 64 MB GPU ×2, 512 MB host
    }

    #[test]
    fn small_input_goes_to_single_gpu_rr() {
        let plan = AutoConfig::default().plan(&tiny(), 10 << 20, 1 << 20);
        assert_eq!(plan.placement, Placement::Gpu);
        assert_eq!(plan.method, Method::SgdRr);
        assert_eq!(plan.num_gpus, 1);
    }

    #[test]
    fn medium_input_shards_across_gpus() {
        // > one GPU (~56 MB usable), ≤ two GPUs × sharding efficiency
        let plan = AutoConfig::default().plan(&tiny(), 80 << 20, 1 << 20);
        assert_eq!(plan.placement, Placement::Gpu);
        assert_eq!(plan.num_gpus, 2);
    }

    #[test]
    fn host_input_defaults_to_rr_without_pinning() {
        let plan = AutoConfig::default().plan(&tiny(), 300 << 20, 1 << 20);
        assert_eq!(plan.placement, Placement::Host);
        assert_eq!(plan.method, Method::SgdRr);
        assert_eq!(plan.pinned_host_bytes, 0);
    }

    #[test]
    fn host_input_with_cr_preference_pins_everything() {
        let cfg = AutoConfig {
            prefer_chunk_reshuffle_on_host: true,
            ..AutoConfig::default()
        };
        let plan = cfg.plan(&tiny(), 300 << 20, 1 << 20);
        assert_eq!(plan.method, Method::SgdCr);
        assert_eq!(plan.pinned_host_bytes, 300 << 20);
    }

    #[test]
    fn oversized_input_goes_to_storage_with_cr() {
        let plan = AutoConfig::default().plan(&tiny(), 2 << 30, 1 << 20);
        assert_eq!(plan.placement, Placement::Ssd);
        assert_eq!(plan.method, Method::SgdCr);
        assert!(plan.reason.contains("random reads"));
    }

    #[test]
    fn model_footprint_can_evict_input_from_gpu() {
        // same input, huge model → GPU budget shrinks → host placement
        let small_model = AutoConfig::default().plan(&tiny(), 50 << 20, 1 << 20);
        assert_eq!(small_model.placement, Placement::Gpu);
        let big_model = AutoConfig::default().plan(&tiny(), 50 << 20, 60 << 20);
        assert_ne!(big_model.placement, Placement::Gpu);
    }

    #[test]
    fn probe_scales_with_params_and_batch() {
        let a = probe_model_peak_bytes(1000, 10, 100);
        let b = probe_model_peak_bytes(2000, 10, 100);
        let c = probe_model_peak_bytes(1000, 20, 100);
        assert!(b > a);
        assert!(c > a);
        assert_eq!(a, 4 * 1000 * 4 + 2 * 10 * 100 * 4);
    }

    #[test]
    fn paper_scale_decisions_match_section6() {
        // papers100M: 0.8 GB/hop × 5 hops of retained labeled rows →
        // "fitting comfortably into GPU memory" (Section 6.4)
        let server = HardwareSpec::a6000_server();
        let papers = AutoConfig::default().plan(&server, 4 << 30, 2 << 30);
        assert_eq!(papers.placement, Placement::Gpu);
        // igb-medium: 40 GB raw × 4 hops = 160 GB → host
        let igb_medium = AutoConfig::default().plan(&server, 160 << 30, 2 << 30);
        assert_eq!(igb_medium.placement, Placement::Host);
        // igb-large: 1.6 TB → storage + CR
        let igb_large = AutoConfig::default().plan(&server, 1600 << 30, 2 << 30);
        assert_eq!(igb_large.placement, Placement::Ssd);
        assert_eq!(igb_large.method, Method::SgdCr);
    }
}
