//! The pre-propagation GNN training system.
//!
//! This crate implements the paper's primary contribution — a training
//! pipeline for PP-GNNs whose data loading is engineered rather than
//! inherited from a generic framework loader:
//!
//! * [`preprocess`] — the one-time feature pre-propagation of Eq. 2
//!   (`S_k = {X, B_k X, …, B_k^R X}`), shard-scheduled: node-range
//!   shard×operator tasks overlap operator passes on the worker pool, and
//!   finished hops persist through an async double-buffered writer; with
//!   labeled-subset retention (the papers100M 70× input shrink) and
//!   input-expansion accounting (Section 3.4). The partition-parallel
//!   pipeline (`run_partitioned` / `run_with_sharded_store`) cuts the
//!   graph into disjoint node partitions, diffuses with per-hop ghost-row
//!   exchange (`ppgnn-partition`), and writes one feature store per
//!   partition — bit-identical results at any partition count;
//! * [`loader`] — the four data-loader generations of Section 4, all
//!   yielding *identical* batch streams for a fixed seed (a property the
//!   integration tests pin down):
//!   baseline per-row assembly → fused gather → threaded double-buffer
//!   prefetching → chunk reshuffling, plus the storage-backed chunk
//!   loaders of Section 4.3 (single-store and sharded-store) — and the
//!   generations compose: any storage loader can run behind the
//!   double-buffer producer thread ([`loader::BatchSource`]);
//! * [`trainer`] — SGD-RR / SGD-CR training loops with per-phase timing
//!   (the functional-plane source of Figure 5) and convergence tracking
//!   (Figures 3/10/13);
//! * [`autoconf`] — the automated training-configuration system of
//!   Section 5 (placement + method from hardware capacities and input
//!   size);
//! * [`bridge`] — adapters that turn measured workloads into
//!   `ppgnn-memsim` descriptors at paper scale (the performance plane).
//!
//! # Quickstart
//!
//! ```
//! use ppgnn_core::preprocess::Preprocessor;
//! use ppgnn_core::trainer::{TrainConfig, Trainer};
//! use ppgnn_graph::synth::{DatasetProfile, SynthDataset};
//! use ppgnn_graph::Operator;
//! use ppgnn_models::Sign;
//! use rand::SeedableRng;
//!
//! let data = SynthDataset::generate(DatasetProfile::products_sim().scaled(0.01), 7)?;
//! let prep = Preprocessor::new(vec![Operator::SymNorm], 2).run(&data);
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let mut model = Sign::new(2, data.profile.feature_dim, 32, data.profile.num_classes, 0.1, &mut rng);
//! let mut trainer = Trainer::new(TrainConfig { epochs: 3, ..TrainConfig::default() });
//! let report = trainer.fit(&mut model, &prep)?;
//! assert!(report.epochs_run == 3);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![deny(missing_docs)]

pub mod autoconf;
pub mod bridge;
pub mod loader;
pub mod persist;
pub mod preprocess;
pub mod sweep;
pub mod trainer;

pub use autoconf::{AutoConfig, Method, TrainingPlan};
pub use loader::{Loader, PpBatch};
pub use preprocess::{
    ExpansionReport, PrepTelemetry, Preprocessor, PrepropFeatures, PrepropOutput,
};
pub use trainer::{ConvergenceTracker, EpochStats, TrainConfig, TrainReport, Trainer};

/// Fisher–Yates shuffle shared by the MP-GNN training loop.
pub(crate) fn loader_shuffle<T>(items: &mut [T], rng: &mut rand::rngs::StdRng) {
    use rand::Rng;
    for i in (1..items.len()).rev() {
        let j = rng.random_range(0..=i);
        items.swap(i, j);
    }
}
