//! SGD-RR / SGD-CR training loops with per-phase instrumentation.
//!
//! The trainer is deliberately explicit about its phases — data loading,
//! forward, backward, optimizer step — because their relative weights *are*
//! the paper's Figure 5. Every epoch also evaluates validation accuracy so
//! convergence points (the Figure 3/10/13 metric: first epoch reaching 99 %
//! of peak validation accuracy) come out of the same run.

use std::error::Error;
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

use ppgnn_models::{MpModel, PpModel};
use ppgnn_nn::{metrics, Adam, CrossEntropyLoss, Mode, Optimizer, Sgd};
use ppgnn_sampler::{SampleStats, Sampler};
use ppgnn_tensor::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::loader::{
    BaselineLoader, ChunkReshuffleLoader, DoubleBufferLoader, FusedGatherLoader, Loader,
};
use crate::preprocess::{PrepropFeatures, PrepropOutput};

/// Per-batch and per-epoch latency distributions mirrored into the
/// telemetry registry. The phase timers ([`EpochStats`]) stay the
/// Figure 5 source of truth; these add tail percentiles (p50/p90/p99)
/// the mean-based phase accounting cannot express.
static TRAIN_BATCH_NS: ppgnn_telemetry::Histogram =
    ppgnn_telemetry::Histogram::new("train.batch_ns");
static TRAIN_EPOCH_NS: ppgnn_telemetry::Histogram =
    ppgnn_telemetry::Histogram::new("train.epoch_ns");
static EVAL_BATCH_NS: ppgnn_telemetry::Histogram = ppgnn_telemetry::Histogram::new("eval.batch_ns");

/// Which loader generation the trainer drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoaderKind {
    /// Per-row baseline (generation 0).
    Baseline,
    /// Fused batch assembly (generation 1).
    Fused,
    /// Threaded double-buffer prefetching (generation 2).
    DoubleBuffer,
    /// Chunk reshuffling with the given chunk size (generation 3 — SGD-CR).
    Chunk {
        /// Rows per chunk.
        chunk_size: usize,
    },
}

/// Which optimizer to construct.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OptKind {
    /// Adam with the given weight decay.
    Adam {
        /// L2 weight decay.
        weight_decay: f32,
    },
    /// SGD with momentum.
    Sgd {
        /// Momentum coefficient.
        momentum: f32,
    },
}

/// Training hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainConfig {
    /// Epochs to run.
    pub epochs: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Loader generation.
    pub loader: LoaderKind,
    /// Learning rate.
    pub lr: f32,
    /// Optimizer.
    pub optimizer: OptKind,
    /// Shuffle seed.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 50,
            batch_size: 512,
            loader: LoaderKind::DoubleBuffer,
            lr: 1e-3,
            optimizer: OptKind::Adam { weight_decay: 0.0 },
            seed: 0,
        }
    }
}

/// Per-epoch measurements.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochStats {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean training loss over batches.
    pub train_loss: f64,
    /// Validation accuracy after the epoch.
    pub val_acc: f64,
    /// Seconds blocked on `next_batch` (data loading).
    pub loading_s: f64,
    /// Seconds in model forward passes.
    pub forward_s: f64,
    /// Seconds in backward passes.
    pub backward_s: f64,
    /// Seconds in optimizer steps.
    pub optim_s: f64,
    /// Wall-clock epoch seconds (including evaluation).
    pub total_s: f64,
}

impl EpochStats {
    /// Fraction of measured training time spent in data loading —
    /// the functional-plane Figure 5 quantity.
    pub fn loading_fraction(&self) -> f64 {
        let denom = self.loading_s + self.forward_s + self.backward_s + self.optim_s;
        if denom > 0.0 {
            self.loading_s / denom
        } else {
            0.0
        }
    }
}

/// Full training-run outcome.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Epochs actually run.
    pub epochs_run: usize,
    /// Per-epoch statistics.
    pub history: Vec<EpochStats>,
    /// Best validation accuracy seen.
    pub best_val_acc: f64,
    /// Test accuracy at the best-validation epoch.
    pub test_acc: f64,
    /// First epoch reaching 99 % of peak validation accuracy.
    pub convergence_point: Option<usize>,
}

impl TrainReport {
    /// Mean epoch time over the run, seconds.
    pub fn mean_epoch_seconds(&self) -> f64 {
        if self.history.is_empty() {
            return 0.0;
        }
        self.history.iter().map(|e| e.total_s).sum::<f64>() / self.history.len() as f64
    }

    /// Mean data-loading fraction over the run.
    pub fn mean_loading_fraction(&self) -> f64 {
        if self.history.is_empty() {
            return 0.0;
        }
        self.history
            .iter()
            .map(|e| e.loading_fraction())
            .sum::<f64>()
            / self.history.len() as f64
    }
}

/// Errors from training runs.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TrainError {
    /// The training partition holds no examples.
    EmptyTrainSet,
    /// The data loader's epoch ended on an I/O failure (e.g. a truncated
    /// feature-store file); carries the loader's error message.
    Loader(String),
}

impl fmt::Display for TrainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrainError::EmptyTrainSet => write!(f, "training partition is empty"),
            TrainError::Loader(msg) => write!(f, "data loader failed mid-epoch: {msg}"),
        }
    }
}

impl Error for TrainError {}

/// Tracks validation accuracy and reports convergence points.
#[derive(Debug, Clone, Default)]
pub struct ConvergenceTracker {
    history: Vec<f64>,
}

impl ConvergenceTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one epoch's validation accuracy.
    pub fn record(&mut self, acc: f64) {
        self.history.push(acc);
    }

    /// Peak accuracy so far (`0.0` when empty).
    pub fn peak(&self) -> f64 {
        self.history.iter().copied().fold(0.0, f64::max)
    }

    /// First epoch whose accuracy reaches `frac` of the peak — the paper's
    /// convergence-point metric with `frac = 0.99`.
    pub fn convergence_point(&self, frac: f64) -> Option<usize> {
        let threshold = self.peak() * frac;
        self.history.iter().position(|&a| a >= threshold)
    }

    /// Recorded history.
    pub fn history(&self) -> &[f64] {
        &self.history
    }
}

/// PP-GNN trainer.
#[derive(Debug)]
pub struct Trainer {
    config: TrainConfig,
}

impl Trainer {
    /// Creates a trainer with the given configuration.
    pub fn new(config: TrainConfig) -> Self {
        Trainer { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &TrainConfig {
        &self.config
    }

    fn make_loader(&self, data: Arc<PrepropFeatures>) -> Box<dyn Loader> {
        let b = self.config.batch_size;
        let s = self.config.seed;
        match self.config.loader {
            LoaderKind::Baseline => Box::new(BaselineLoader::new(data, b, s)),
            LoaderKind::Fused => Box::new(FusedGatherLoader::new(data, b, s)),
            LoaderKind::DoubleBuffer => Box::new(DoubleBufferLoader::new(data, b, s)),
            LoaderKind::Chunk { chunk_size } => {
                Box::new(ChunkReshuffleLoader::new(data, b, chunk_size, s))
            }
        }
    }

    fn make_optimizer(&self) -> Box<dyn Optimizer> {
        match self.config.optimizer {
            OptKind::Adam { weight_decay } => Box::new(Adam::with_options(
                self.config.lr,
                0.9,
                0.999,
                1e-8,
                weight_decay,
            )),
            OptKind::Sgd { momentum } => Box::new(Sgd::with_options(self.config.lr, momentum, 0.0)),
        }
    }

    /// Trains `model` on `data.train`, evaluating on `data.val`/`data.test`
    /// each epoch.
    ///
    /// # Errors
    ///
    /// Returns [`TrainError::EmptyTrainSet`] if there is nothing to train
    /// on.
    pub fn fit(
        &mut self,
        model: &mut dyn PpModel,
        data: &PrepropOutput,
    ) -> Result<TrainReport, TrainError> {
        if data.train.is_empty() {
            return Err(TrainError::EmptyTrainSet);
        }
        let mut loader = {
            let _setup_span = ppgnn_telemetry::span("loader_setup");
            // ppgnn-analyze: allow(hot_path_alloc) -- one-time setup: the
            // loader owns an Arc'd copy of the train partition for the run.
            self.make_loader(Arc::new(data.train.clone()))
        };
        let mut opt = self.make_optimizer();
        let loss_fn = CrossEntropyLoss;

        let mut history = Vec::with_capacity(self.config.epochs);
        let mut tracker = ConvergenceTracker::new();
        let mut best_val = 0.0f64;
        let mut test_at_best = 0.0f64;
        // Logits slot reused by every training batch of the run.
        let mut logits = Matrix::default();

        for epoch in 0..self.config.epochs {
            let epoch_start = Instant::now();
            let _epoch_span = ppgnn_telemetry::span_with("epoch", &[("epoch", epoch as u64)]);
            let mut loading_s = 0.0;
            let mut forward_s = 0.0;
            let mut backward_s = 0.0;
            let mut optim_s = 0.0;
            let mut loss_sum = 0.0f64;
            let mut batches = 0usize;

            loader.start_epoch();
            loop {
                let t = Instant::now();
                let batch_t0 = t;
                let Some(batch) = loader.next_batch() else {
                    loading_s += t.elapsed().as_secs_f64();
                    break;
                };
                loading_s += t.elapsed().as_secs_f64();

                let t = Instant::now();
                model.forward_into(&batch.hops, Mode::Train, &mut logits);
                let (loss, grad) = loss_fn.loss_and_grad(&logits, &batch.labels);
                forward_s += t.elapsed().as_secs_f64();

                let t = Instant::now();
                model.zero_grad();
                model.backward(&grad);
                backward_s += t.elapsed().as_secs_f64();

                let t = Instant::now();
                opt.step(&mut model.params());
                optim_s += t.elapsed().as_secs_f64();

                loss_sum += loss as f64;
                batches += 1;
                TRAIN_BATCH_NS.record(batch_t0.elapsed().as_nanos() as u64);
            }
            if let Some(msg) = loader.take_error() {
                return Err(TrainError::Loader(msg));
            }

            let val_acc = evaluate(model, &data.val, self.config.batch_size);
            tracker.record(val_acc);
            if val_acc >= best_val {
                best_val = val_acc;
                test_at_best = evaluate(model, &data.test, self.config.batch_size);
            }

            history.push(EpochStats {
                epoch,
                train_loss: if batches > 0 {
                    loss_sum / batches as f64
                } else {
                    0.0
                },
                val_acc,
                loading_s,
                forward_s,
                backward_s,
                optim_s,
                total_s: epoch_start.elapsed().as_secs_f64(),
            });
            TRAIN_EPOCH_NS.record(epoch_start.elapsed().as_nanos() as u64);
        }

        Ok(TrainReport {
            epochs_run: history.len(),
            history,
            best_val_acc: best_val,
            test_acc: test_at_best,
            convergence_point: tracker.convergence_point(0.99),
        })
    }
}

/// Batched full-partition evaluation (Mode::Eval), returning accuracy.
///
/// Hop-slice buffers are resized in place and refilled via
/// [`Matrix::slice_rows_into`], and logits land in a reusable slot via
/// [`PpModel::forward_into`] — steady-state batches of the sweep run
/// without fresh heap allocations. Empty partitions evaluate to `0.0`.
pub fn evaluate(model: &mut dyn PpModel, data: &PrepropFeatures, batch_size: usize) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    let _eval_span = ppgnn_telemetry::span_with("eval", &[("rows", data.len() as u64)]);
    let n = data.len();
    let mut hits = 0usize;
    let mut start = 0;
    let mut hop_slices: Vec<Matrix> = data.hops.iter().map(|_| Matrix::default()).collect();
    let mut logits = Matrix::default();
    while start < n {
        // Timed only when the tracer is on: the disabled-path cost of an
        // eval batch stays one relaxed atomic load.
        let batch_t0 = ppgnn_telemetry::enabled().then(Instant::now);
        let end = (start + batch_size).min(n);
        let rows = end - start;
        for (hop, slice) in data.hops.iter().zip(&mut hop_slices) {
            slice.resize_to(rows, hop.cols());
            hop.slice_rows_into(start, end, slice);
        }
        model.forward_into(&hop_slices, Mode::Eval, &mut logits);
        let labels = &data.labels[start..end];
        hits += (metrics::accuracy(&logits, labels) * labels.len() as f64).round() as usize;
        start = end;
        if let Some(t0) = batch_t0 {
            EVAL_BATCH_NS.record(t0.elapsed().as_nanos() as u64);
        }
    }
    hits as f64 / n as f64
}

/// Per-epoch statistics of an MP-GNN training run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MpEpochStats {
    /// Epoch index.
    pub epoch: usize,
    /// Mean training loss.
    pub train_loss: f64,
    /// Validation accuracy.
    pub val_acc: f64,
    /// Seconds spent sampling.
    pub sampling_s: f64,
    /// Seconds gathering input features.
    pub gather_s: f64,
    /// Seconds in forward+backward+step.
    pub compute_s: f64,
    /// Accumulated sampling statistics over the epoch.
    pub sample_stats: SampleStats,
}

/// MP-GNN training-run outcome.
#[derive(Debug, Clone)]
pub struct MpTrainReport {
    /// Per-epoch statistics.
    pub history: Vec<MpEpochStats>,
    /// Best validation accuracy.
    pub best_val_acc: f64,
    /// Test accuracy at the best-validation epoch.
    pub test_acc: f64,
    /// 99 %-of-peak convergence epoch.
    pub convergence_point: Option<usize>,
}

/// Trains an MP-GNN with a sampler — the baseline pipeline PP-GNNs are
/// compared against. Evaluation also uses the sampler (inference sampling,
/// as DGL examples do).
///
/// # Errors
///
/// Returns [`TrainError::EmptyTrainSet`] if `train_ids` is empty.
#[allow(clippy::too_many_arguments)]
pub fn fit_mp(
    model: &mut dyn MpModel,
    sampler: &mut dyn Sampler,
    graph: &ppgnn_graph::CsrGraph,
    features: &Matrix,
    labels: &[u32],
    train_ids: &[usize],
    val_ids: &[usize],
    test_ids: &[usize],
    config: &TrainConfig,
) -> Result<MpTrainReport, TrainError> {
    if train_ids.is_empty() {
        return Err(TrainError::EmptyTrainSet);
    }
    let mut opt: Box<dyn Optimizer> = match config.optimizer {
        OptKind::Adam { weight_decay } => Box::new(Adam::with_options(
            config.lr,
            0.9,
            0.999,
            1e-8,
            weight_decay,
        )),
        OptKind::Sgd { momentum } => Box::new(Sgd::with_options(config.lr, momentum, 0.0)),
    };
    let loss_fn = CrossEntropyLoss;
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut history = Vec::new();
    let mut tracker = ConvergenceTracker::new();
    let mut best_val = 0.0;
    let mut test_at_best = 0.0;
    // Input-gather and logits slots reused by every training batch.
    let mut xin = Matrix::default();
    let mut logits = Matrix::default();

    for epoch in 0..config.epochs {
        let mut order: Vec<usize> = train_ids.to_vec();
        crate::loader_shuffle(&mut order, &mut rng);
        let mut sampling_s = 0.0;
        let mut gather_s = 0.0;
        let mut compute_s = 0.0;
        let mut loss_sum = 0.0;
        let mut batches = 0usize;
        let mut stats = SampleStats::default();

        for seeds in order.chunks(config.batch_size) {
            let t = Instant::now();
            let batch = sampler.sample(graph, seeds);
            sampling_s += t.elapsed().as_secs_f64();
            stats.accumulate(&batch.stats);

            let t = Instant::now();
            xin.resize_to(batch.input_nodes().len(), features.cols());
            features.gather_rows_into(batch.input_nodes(), &mut xin);
            gather_s += t.elapsed().as_secs_f64();

            let t = Instant::now();
            let y: Vec<u32> = seeds.iter().map(|&s| labels[s]).collect();
            model.forward_into(&batch, &xin, Mode::Train, &mut logits);
            let (loss, grad) = loss_fn.loss_and_grad(&logits, &y);
            model.zero_grad();
            model.backward(&grad);
            opt.step(&mut model.params());
            compute_s += t.elapsed().as_secs_f64();
            loss_sum += loss as f64;
            batches += 1;
        }

        let val_acc = evaluate_mp(model, sampler, graph, features, labels, val_ids, config);
        tracker.record(val_acc);
        if val_acc >= best_val {
            best_val = val_acc;
            test_at_best = evaluate_mp(model, sampler, graph, features, labels, test_ids, config);
        }
        history.push(MpEpochStats {
            epoch,
            train_loss: if batches > 0 {
                loss_sum / batches as f64
            } else {
                0.0
            },
            val_acc,
            sampling_s,
            gather_s,
            compute_s,
            sample_stats: stats,
        });
    }

    Ok(MpTrainReport {
        history,
        best_val_acc: best_val,
        test_acc: test_at_best,
        convergence_point: tracker.convergence_point(0.99),
    })
}

/// Sampled evaluation of an MP-GNN over `ids`.
pub fn evaluate_mp(
    model: &mut dyn MpModel,
    sampler: &mut dyn Sampler,
    graph: &ppgnn_graph::CsrGraph,
    features: &Matrix,
    labels: &[u32],
    ids: &[usize],
    config: &TrainConfig,
) -> f64 {
    if ids.is_empty() {
        return 0.0;
    }
    let mut hits = 0usize;
    let mut xin = Matrix::default();
    let mut logits = Matrix::default();
    for seeds in ids.chunks(config.batch_size) {
        let batch = sampler.sample(graph, seeds);
        xin.resize_to(batch.input_nodes().len(), features.cols());
        features.gather_rows_into(batch.input_nodes(), &mut xin);
        model.forward_into(&batch, &xin, Mode::Eval, &mut logits);
        let y: Vec<u32> = seeds.iter().map(|&s| labels[s]).collect();
        hits += (metrics::accuracy(&logits, &y) * y.len() as f64).round() as usize;
    }
    hits as f64 / ids.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preprocess::Preprocessor;
    use ppgnn_graph::synth::{DatasetProfile, SynthDataset};
    use ppgnn_graph::Operator;
    use ppgnn_models::{GraphSage, Sgc, Sign};
    use ppgnn_sampler::NeighborSampler;

    fn prep(scale: f64) -> (SynthDataset, PrepropOutput) {
        let data = SynthDataset::generate(DatasetProfile::pokec_sim().scaled(scale), 5).unwrap();
        let out = Preprocessor::new(vec![Operator::SymNorm], 2).run(&data);
        (data, out)
    }

    #[test]
    fn sign_learns_above_majority_baseline() {
        let (data, out) = prep(0.04);
        let mut rng = StdRng::seed_from_u64(1);
        let mut model = Sign::new(2, data.profile.feature_dim, 32, 2, 0.1, &mut rng);
        let mut trainer = Trainer::new(TrainConfig {
            epochs: 15,
            batch_size: 64,
            lr: 3e-3,
            ..TrainConfig::default()
        });
        let report = trainer.fit(&mut model, &out).unwrap();
        let majority = data.majority_baseline();
        assert!(
            report.test_acc > majority + 0.08,
            "test acc {} vs majority {}",
            report.test_acc,
            majority
        );
        assert_eq!(report.epochs_run, 15);
        assert!(report.convergence_point.is_some());
    }

    #[test]
    fn loader_kinds_produce_similar_accuracy() {
        let (data, out) = prep(0.03);
        let accuracy_of = |kind: LoaderKind| {
            let mut rng = StdRng::seed_from_u64(2);
            let mut model = Sgc::new(2, data.profile.feature_dim, 2, &mut rng);
            let mut trainer = Trainer::new(TrainConfig {
                epochs: 10,
                batch_size: 64,
                lr: 0.01,
                loader: kind,
                ..TrainConfig::default()
            });
            trainer.fit(&mut model, &out).unwrap().test_acc
        };
        let rr = accuracy_of(LoaderKind::DoubleBuffer);
        let cr = accuracy_of(LoaderKind::Chunk { chunk_size: 64 });
        assert!((rr - cr).abs() < 0.08, "RR {rr} vs CR {cr}");
    }

    #[test]
    fn phase_timers_are_populated() {
        let (data, out) = prep(0.02);
        let mut rng = StdRng::seed_from_u64(3);
        let mut model = Sgc::new(2, data.profile.feature_dim, 2, &mut rng);
        let mut trainer = Trainer::new(TrainConfig {
            epochs: 2,
            batch_size: 32,
            loader: LoaderKind::Baseline,
            ..TrainConfig::default()
        });
        let report = trainer.fit(&mut model, &out).unwrap();
        let e = &report.history[0];
        assert!(e.loading_s > 0.0);
        assert!(e.forward_s > 0.0);
        assert!(e.total_s >= e.loading_s + e.forward_s);
        assert!(e.loading_fraction() > 0.0 && e.loading_fraction() < 1.0);
    }

    #[test]
    fn convergence_tracker_finds_first_crossing() {
        let mut t = ConvergenceTracker::new();
        for &a in &[0.1, 0.5, 0.79, 0.80, 0.805] {
            t.record(a);
        }
        assert_eq!(t.peak(), 0.805);
        assert_eq!(t.convergence_point(0.99), Some(3));
        assert_eq!(t.convergence_point(0.5), Some(1));
    }

    #[test]
    fn empty_train_set_is_an_error() {
        let (_, mut out) = prep(0.02);
        out.train.labels.clear();
        out.train.node_ids.clear();
        out.train.hops = out.train.hops.iter().map(|h| h.slice_rows(0, 0)).collect();
        let mut rng = StdRng::seed_from_u64(4);
        let mut model = Sgc::new(2, 65, 2, &mut rng);
        let mut trainer = Trainer::new(TrainConfig::default());
        assert_eq!(
            trainer.fit(&mut model, &out).unwrap_err(),
            TrainError::EmptyTrainSet
        );
    }

    #[test]
    fn mp_training_learns_and_tracks_stats() {
        let data = SynthDataset::generate(DatasetProfile::pokec_sim().scaled(0.03), 6).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let mut model = GraphSage::new(2, data.profile.feature_dim, 16, 2, &mut rng);
        let mut sampler = NeighborSampler::new(vec![5, 5], 1);
        let config = TrainConfig {
            epochs: 8,
            batch_size: 64,
            lr: 5e-3,
            ..TrainConfig::default()
        };
        let report = fit_mp(
            &mut model,
            &mut sampler,
            &data.graph,
            &data.features,
            &data.labels,
            &data.split.train,
            &data.split.val,
            &data.split.test,
            &config,
        )
        .unwrap();
        assert!(report.test_acc > data.majority_baseline());
        let stats = report.history[0].sample_stats;
        assert!(
            stats.input_nodes > stats.seeds,
            "neighbor expansion expected"
        );
    }
}
