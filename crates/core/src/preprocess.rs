//! Feature pre-propagation (Eq. 2) and input-expansion accounting.

use std::time::Instant;

use ppgnn_dataio::{DataIoError, FeatureStore, FeatureStoreWriter, StoreMeta};
use ppgnn_graph::synth::SynthDataset;
use ppgnn_graph::Operator;
use ppgnn_tensor::Matrix;

/// Hop features plus labels for one node partition (train/val/test).
///
/// Row `i` of every hop matrix corresponds to `node_ids[i]`.
#[derive(Debug, Clone)]
pub struct PrepropFeatures {
    /// `R + 1` matrices of shape `len(node_ids) x F` (hop 0 = raw features).
    pub hops: Vec<Matrix>,
    /// Labels aligned with rows.
    pub labels: Vec<u32>,
    /// Global node ids aligned with rows.
    pub node_ids: Vec<usize>,
}

impl PrepropFeatures {
    /// Number of examples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// `true` when the partition is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Bytes occupied by the hop features.
    pub fn size_bytes(&self) -> u64 {
        self.hops.iter().map(|h| h.size_bytes() as u64).sum()
    }

    /// Bytes per example row across all hops.
    pub fn row_bytes(&self) -> u64 {
        if self.hops.is_empty() {
            0
        } else {
            (self.hops.len() * self.hops[0].cols() * 4) as u64
        }
    }
}

/// The Section 3.4 quantity: how preprocessing expands the input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExpansionReport {
    /// Raw input feature bytes (`n × F × 4`).
    pub raw_bytes: u64,
    /// Bytes after expansion, **retained rows only**
    /// (`K(R+1) × n_labeled × F × 4`).
    pub expanded_bytes: u64,
    /// Number of operators `K`.
    pub num_operators: usize,
    /// Number of hops `R`.
    pub hops: usize,
}

impl ExpansionReport {
    /// Expansion multiple over the *labeled* raw bytes.
    pub fn factor(&self) -> f64 {
        if self.raw_bytes == 0 {
            0.0
        } else {
            self.expanded_bytes as f64 / self.raw_bytes as f64
        }
    }
}

/// Result of running the preprocessor on a dataset.
#[derive(Debug, Clone)]
pub struct PrepropOutput {
    /// Training partition.
    pub train: PrepropFeatures,
    /// Validation partition.
    pub val: PrepropFeatures,
    /// Test partition.
    pub test: PrepropFeatures,
    /// Wall-clock preprocessing time, seconds (Table 2 / Table 7).
    pub preprocess_seconds: f64,
    /// Input-expansion accounting.
    pub expansion: ExpansionReport,
}

/// The one-time pre-propagation stage.
///
/// Computes `S_k = {X, B_k X, …, B_k^R X}` for each operator by repeated
/// SpMM over the **full graph** (unlabeled nodes contribute information),
/// then retains only the rows of labeled nodes — which is why
/// papers100M-style datasets shrink from 53 GB of raw features to
/// ~0.8 GB/hop of training input.
///
/// With `K > 1` operators, same-hop matrices from different operators are
/// concatenated feature-wise (the SIGN multi-kernel convention), so the
/// model-facing shape stays `R + 1` matrices of `K·F` columns.
#[derive(Debug, Clone)]
pub struct Preprocessor {
    operators: Vec<Operator>,
    hops: usize,
}

impl Preprocessor {
    /// Creates a preprocessor with `operators` (`K ≥ 1`) and `hops` (`R`).
    ///
    /// # Panics
    ///
    /// Panics if `operators` is empty.
    pub fn new(operators: Vec<Operator>, hops: usize) -> Self {
        assert!(!operators.is_empty(), "at least one operator required");
        Preprocessor { operators, hops }
    }

    /// Number of hops `R`.
    pub fn hops(&self) -> usize {
        self.hops
    }

    /// Operators `B_1..B_K`.
    pub fn operators(&self) -> &[Operator] {
        &self.operators
    }

    /// Runs pre-propagation on `data`.
    ///
    /// This is the streaming pipeline: per operator, hops are diffused one
    /// at a time through two ping-pong full-graph buffers
    /// ([`Operator::apply_with_base_into`] over `spmm_into`), and labeled
    /// rows are gathered straight into the operator's column block of the
    /// partition output as each hop completes. No full-graph hop chain is
    /// ever materialized: peak full-graph residency is the two propagation
    /// buffers (plus two diffusion-series term buffers for `Ppr`/`Heat`),
    /// versus the `K·(R+1)` chain matrices plus a concatenation copy of the
    /// previous implementation.
    pub fn run(&self, data: &SynthDataset) -> PrepropOutput {
        self.run_streaming(data, None)
            .expect("in-memory preprocessing performs no I/O")
    }

    /// Runs pre-propagation and **writes the training partition through**
    /// to a [`FeatureStore`] as each hop completes (the Section 4.3
    /// file-per-hop layout), instead of materializing everything and
    /// persisting afterwards.
    ///
    /// Equivalent on success to `run` followed by
    /// [`PrepropOutput::write_store`], without holding the store contents
    /// twice.
    ///
    /// # Errors
    ///
    /// Propagates store-creation and write failures.
    pub fn run_with_store(
        &self,
        data: &SynthDataset,
        dir: impl AsRef<std::path::Path>,
        dataset: &str,
        chunk_size: usize,
    ) -> Result<(PrepropOutput, FeatureStore), DataIoError> {
        let f = data.features.cols();
        let meta = StoreMeta {
            dataset: dataset.to_string(),
            num_hops: self.hops + 1,
            rows: data.split.train.len(),
            cols: self.operators.len() * f,
            chunk_size,
        };
        let mut writer = FeatureStoreWriter::create(dir, meta)?;
        let out = self.run_streaming(data, Some(&mut writer))?;
        let store = writer.finish()?;
        Ok((out, store))
    }

    fn run_streaming(
        &self,
        data: &SynthDataset,
        mut sink: Option<&mut FeatureStoreWriter>,
    ) -> Result<PrepropOutput, DataIoError> {
        let start = Instant::now();
        let n = data.graph.num_nodes();
        let f = data.features.cols();
        let k_ops = self.operators.len();
        let kf = k_ops * f;

        let ids_by_part: [&[usize]; 3] = [&data.split.train, &data.split.val, &data.split.test];
        let mut hops_by_part: Vec<Vec<Matrix>> = ids_by_part
            .iter()
            .map(|ids| {
                (0..=self.hops)
                    .map(|_| Matrix::zeros(ids.len(), kf))
                    .collect()
            })
            .collect();

        // Two ping-pong propagation buffers, reused across operators.
        let mut current = Matrix::zeros(n, f);
        let mut next = Matrix::zeros(n, f);
        for (ki, op) in self.operators.iter().enumerate() {
            let col = ki * f;
            let last_op = ki + 1 == k_ops;
            let base = op.base(&data.graph);
            // Hop 0 is the raw features, gathered directly from the input.
            for (ids, hops) in ids_by_part.iter().zip(hops_by_part.iter_mut()) {
                data.features
                    .gather_rows_into_offset(ids, &mut hops[0], col);
            }
            if last_op {
                // All operators have filled their hop-0 column block.
                if let Some(writer) = sink.as_deref_mut() {
                    writer.write_hop(0, &hops_by_part[0][0])?;
                }
            }
            if self.hops == 0 {
                continue;
            }
            current.copy_from(&data.features);
            for r in 1..=self.hops {
                op.apply_with_base_into(&base, &current, &mut next);
                std::mem::swap(&mut current, &mut next);
                for (ids, hops) in ids_by_part.iter().zip(hops_by_part.iter_mut()) {
                    current.gather_rows_into_offset(ids, &mut hops[r], col);
                }
                if last_op {
                    if let Some(writer) = sink.as_deref_mut() {
                        writer.write_hop(r, &hops_by_part[0][r])?;
                    }
                }
            }
        }

        let mut parts = hops_by_part.into_iter();
        let mut extract = |ids: &[usize]| -> PrepropFeatures {
            PrepropFeatures {
                hops: parts.next().expect("three partitions"),
                labels: data.labels_of(ids),
                node_ids: ids.to_vec(),
            }
        };
        let train = extract(&data.split.train);
        let val = extract(&data.split.val);
        let test = extract(&data.split.test);

        let preprocess_seconds = start.elapsed().as_secs_f64();
        let labeled = data.split.num_labeled() as u64;
        let expansion = ExpansionReport {
            raw_bytes: labeled * (f as u64) * 4,
            expanded_bytes: labeled * (k_ops as u64) * ((self.hops + 1) as u64) * (f as u64) * 4,
            num_operators: k_ops,
            hops: self.hops,
        };
        Ok(PrepropOutput {
            train,
            val,
            test,
            preprocess_seconds,
            expansion,
        })
    }
}

impl PrepropOutput {
    /// Persists the **training** partition to a feature store (the
    /// Section 4.3 file-per-hop layout).
    ///
    /// # Errors
    ///
    /// Propagates store-creation and write failures.
    pub fn write_store(
        &self,
        dir: impl AsRef<std::path::Path>,
        dataset: &str,
        chunk_size: usize,
    ) -> Result<FeatureStore, DataIoError> {
        let rows = self.train.len();
        let cols = self.train.hops.first().map(|h| h.cols()).unwrap_or(0);
        let meta = StoreMeta {
            dataset: dataset.to_string(),
            num_hops: self.train.hops.len(),
            rows,
            cols,
            chunk_size,
        };
        let mut writer = FeatureStoreWriter::create(dir, meta)?;
        for (k, hop) in self.train.hops.iter().enumerate() {
            writer.write_hop(k, hop)?;
        }
        writer.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppgnn_graph::synth::DatasetProfile;

    fn small_data() -> SynthDataset {
        SynthDataset::generate(DatasetProfile::pokec_sim().scaled(0.02), 3).unwrap()
    }

    #[test]
    fn produces_r_plus_one_hops_per_partition() {
        let data = small_data();
        let out = Preprocessor::new(vec![Operator::SymNorm], 3).run(&data);
        assert_eq!(out.train.hops.len(), 4);
        assert_eq!(out.val.hops.len(), 4);
        assert_eq!(out.train.len(), data.split.train.len());
        assert_eq!(out.test.len(), data.split.test.len());
        // hop 0 is the raw features of the partition rows
        let raw = data.features.gather_rows(&data.split.train);
        assert!(out.train.hops[0].max_abs_diff(&raw) < 1e-7);
    }

    #[test]
    fn hop_r_equals_r_applications_of_the_operator() {
        let data = small_data();
        let out = Preprocessor::new(vec![Operator::SymNorm], 2).run(&data);
        let mut expected = data.features.clone();
        for _ in 0..2 {
            expected = Operator::SymNorm.apply(&data.graph, &expected);
        }
        let expected_rows = expected.gather_rows(&data.split.train);
        assert!(out.train.hops[2].max_abs_diff(&expected_rows) < 1e-4);
    }

    #[test]
    fn multi_operator_concatenates_features() {
        let data = small_data();
        let f = data.profile.feature_dim;
        let out = Preprocessor::new(vec![Operator::SymNorm, Operator::RowNorm], 1).run(&data);
        assert_eq!(out.train.hops[0].cols(), 2 * f);
        assert_eq!(out.expansion.num_operators, 2);
        assert!((out.expansion.factor() - 4.0).abs() < 1e-9); // K(R+1) = 2·2
    }

    #[test]
    fn expansion_report_matches_k_r_plus_one() {
        let data = small_data();
        let out = Preprocessor::new(vec![Operator::SymNorm], 3).run(&data);
        assert!((out.expansion.factor() - 4.0).abs() < 1e-9);
        assert_eq!(
            out.expansion.expanded_bytes,
            out.train.size_bytes() + out.val.size_bytes() + out.test.size_bytes()
        );
    }

    #[test]
    fn partial_labels_shrink_retained_rows() {
        let data =
            SynthDataset::generate(DatasetProfile::papers100m_sim().scaled(0.05), 1).unwrap();
        let out = Preprocessor::new(vec![Operator::SymNorm], 2).run(&data);
        let labeled = data.split.num_labeled();
        assert_eq!(out.train.len() + out.val.len() + out.test.len(), labeled);
        // expanded bytes ≪ full-graph raw bytes — the papers100M effect
        let full_raw = (data.graph.num_nodes() * data.profile.feature_dim * 4) as u64;
        assert!(out.expansion.expanded_bytes < full_raw / 5);
    }

    #[test]
    fn zero_hops_keeps_raw_features_only() {
        let data = small_data();
        let out = Preprocessor::new(vec![Operator::SymNorm], 0).run(&data);
        assert_eq!(out.train.hops.len(), 1);
        assert!((out.expansion.factor() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn write_through_store_matches_post_hoc_write() {
        let data = small_data();
        let prep = Preprocessor::new(vec![Operator::SymNorm, Operator::RowNorm], 2);
        let dir = std::env::temp_dir().join(format!("ppgnn-stream-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let (out, mut store) = prep.run_with_store(&data, &dir, "pokec-sim", 32).unwrap();
        let reference = prep.run(&data);
        assert_eq!(store.meta().num_hops, 3);
        assert_eq!(store.meta().cols, 2 * data.profile.feature_dim);
        for r in 0..=2 {
            assert!(out.train.hops[r].max_abs_diff(&reference.train.hops[r]) < 1e-7);
            let stored = store.read_full_hop(r).unwrap();
            assert!(stored.max_abs_diff(&reference.train.hops[r]) < 1e-7);
        }
        assert!(out.val.hops[1].max_abs_diff(&reference.val.hops[1]) < 1e-7);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn write_store_round_trips_training_rows() {
        let data = small_data();
        let out = Preprocessor::new(vec![Operator::SymNorm], 1).run(&data);
        let dir = std::env::temp_dir().join(format!("ppgnn-prep-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut store = out.write_store(&dir, "pokec-sim", 64).unwrap();
        let hop0 = store.read_full_hop(0).unwrap();
        assert!(hop0.max_abs_diff(&out.train.hops[0]) < 1e-7);
        let hop1 = store.read_full_hop(1).unwrap();
        assert!(hop1.max_abs_diff(&out.train.hops[1]) < 1e-7);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
