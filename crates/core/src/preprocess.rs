//! Feature pre-propagation (Eq. 2) and input-expansion accounting.
//!
//! Since the shard-scheduling rewrite this module is a small diffusion
//! engine: operator passes are cut into node-range **shards**
//! ([`ppgnn_graph::ShardPlan`]) and submitted as shard×operator tasks to
//! the shared worker pool, so different operators' passes overlap instead
//! of running strictly one after another; finished hops are persisted
//! through an asynchronous double-buffered writer thread
//! ([`ppgnn_dataio::AsyncHopWriter`]) so hop `r + 1` diffusion overlaps
//! hop `r` storage I/O. Both schedules are bit-for-bit equivalent to the
//! sequential path (pinned by `tests/shard_equivalence.rs`).
//!
//! On top of the single-memory-domain schedules sits the **partitioned**
//! pipeline ([`Preprocessor::run_partitioned`] /
//! [`Preprocessor::run_with_sharded_store`]): the graph is cut into
//! disjoint node partitions ([`ppgnn_graph::PartitionPlan`]), diffused with
//! per-hop ghost-row exchange by `ppgnn-partition`, and each partition's
//! training rows are written through their own async writer into a
//! per-partition store under a [`ppgnn_dataio::ShardedStoreManifest`] —
//! bit-identical features, byte-identical per-row store contents (pinned
//! by `tests/partition_equivalence.rs`).

use std::time::Instant;

use ppgnn_dataio::{
    AsyncHopWriter, DataIoError, FeatureStore, ShardedFeatureStore, ShardedStoreWriter, StoreMeta,
    DEFAULT_WRITER_QUEUE,
};
use ppgnn_graph::synth::SynthDataset;
use ppgnn_graph::{Operator, Partitioner, RangeCutPartitioner, ShardPlan, WeightedCsr};
use ppgnn_partition::{PartitionStat, PartitionedDiffusion};
use ppgnn_tensor::{knobs, pool, Matrix, StoreDtype, WorkerPool};

/// Per-hop diffusion wall time mirrored into the telemetry registry
/// (also carried per run in [`PrepTelemetry::hop_ns`]).
static PREP_HOP_NS: ppgnn_telemetry::Histogram =
    ppgnn_telemetry::Histogram::new("preprocess.hop_ns");

/// Hop features plus labels for one node partition (train/val/test).
///
/// Row `i` of every hop matrix corresponds to `node_ids[i]`.
#[derive(Debug, Clone)]
pub struct PrepropFeatures {
    /// `R + 1` matrices of shape `len(node_ids) x F` (hop 0 = raw features).
    pub hops: Vec<Matrix>,
    /// Labels aligned with rows.
    pub labels: Vec<u32>,
    /// Global node ids aligned with rows.
    pub node_ids: Vec<usize>,
}

impl PrepropFeatures {
    /// Number of examples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// `true` when the partition is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Bytes occupied by the hop features.
    pub fn size_bytes(&self) -> u64 {
        self.hops.iter().map(|h| h.size_bytes() as u64).sum()
    }

    /// Bytes per example row across all hops.
    pub fn row_bytes(&self) -> u64 {
        if self.hops.is_empty() {
            0
        } else {
            (self.hops.len() * self.hops[0].cols() * 4) as u64
        }
    }
}

/// Observability payload of one preprocessing run: the per-hop stage
/// breakdown and write-backpressure signals the `exp_*` binaries and
/// bench artifacts report alongside the expansion accounting.
///
/// Times come from wall-clock instants taken once per hop (negligible
/// against a diffusion pass), so they are populated whether or not the
/// `PPGNN_TRACE` tracer is enabled; two runs of the same configuration
/// therefore differ here even when their features are bit-identical —
/// equivalence tests compare reports with `telemetry` reset to default.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PrepTelemetry {
    /// Wall nanoseconds spent producing each hop (index = hop; hop 0 is
    /// the raw-feature gather), accumulated across operator groups.
    pub hop_ns: Vec<u64>,
    /// Async hop-writer queue high-water mark (0 for in-memory runs);
    /// the max across partition writers for sharded-store runs.
    pub writer_queue_hwm: u64,
    /// Total nanoseconds hop submission blocked on write backpressure,
    /// summed across partition writers for sharded-store runs.
    pub writer_block_ns: u64,
}

/// The Section 3.4 quantity: how preprocessing expands the input.
///
/// All byte counts are derived from the rows the run **actually
/// materialized** across the three partitions (train + val + test), not
/// from a formula over the dataset split — so the report stays consistent
/// with the output even if partition handling changes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExpansionReport {
    /// Raw input feature bytes of the retained rows (`retained_rows × F × 4`).
    pub raw_bytes: u64,
    /// Bytes after expansion, **retained rows only**
    /// (`K(R+1) × retained_rows × F × 4`).
    pub expanded_bytes: u64,
    /// Rows retained across all three partitions — the labeled nodes whose
    /// expanded features the run materialized.
    pub retained_rows: u64,
    /// Number of operators `K`.
    pub num_operators: usize,
    /// Number of hops `R`.
    pub hops: usize,
    /// Per-partition balance accounting (rows, nnz, ghost rows, training
    /// rows, store bytes) when the run used the partitioned pipeline;
    /// empty for single-domain runs. The `exp_*` binaries print this as
    /// the partition balance table.
    pub partitions: Vec<PartitionStat>,
    /// Per-hop timings and writer-backpressure signals of the run that
    /// produced this report (empty/zero for reports rebuilt from legacy
    /// persisted manifests).
    pub telemetry: PrepTelemetry,
}

impl ExpansionReport {
    /// Expansion multiple over the *labeled* raw bytes.
    pub fn factor(&self) -> f64 {
        if self.raw_bytes == 0 {
            0.0
        } else {
            self.expanded_bytes as f64 / self.raw_bytes as f64
        }
    }
}

/// Result of running the preprocessor on a dataset.
#[derive(Debug, Clone)]
pub struct PrepropOutput {
    /// Training partition.
    pub train: PrepropFeatures,
    /// Validation partition.
    pub val: PrepropFeatures,
    /// Test partition.
    pub test: PrepropFeatures,
    /// Wall-clock preprocessing time, seconds (Table 2 / Table 7).
    pub preprocess_seconds: f64,
    /// Input-expansion accounting.
    pub expansion: ExpansionReport,
}

/// The one-time pre-propagation stage.
///
/// Computes `S_k = {X, B_k X, …, B_k^R X}` for each operator by repeated
/// SpMM over the **full graph** (unlabeled nodes contribute information),
/// then retains only the rows of labeled nodes — which is why
/// papers100M-style datasets shrink from 53 GB of raw features to
/// ~0.8 GB/hop of training input.
///
/// With `K > 1` operators, same-hop matrices from different operators are
/// concatenated feature-wise (the SIGN multi-kernel convention), so the
/// model-facing shape stays `R + 1` matrices of `K·F` columns.
#[derive(Debug, Clone)]
pub struct Preprocessor {
    operators: Vec<Operator>,
    hops: usize,
    /// `None` = auto: `PPGNN_NUM_SHARDS`, else the pool width.
    num_shards: Option<usize>,
    /// `None` = auto: `PPGNN_NUM_PARTITIONS`, else 1 (unpartitioned).
    num_partitions: Option<usize>,
    /// `None` = auto: `PPGNN_WRITER_QUEUE`, else [`DEFAULT_WRITER_QUEUE`].
    writer_queue: Option<usize>,
    /// `None` = auto: `PPGNN_STORE_DTYPE`, else [`StoreDtype::F32`].
    store_dtype: Option<StoreDtype>,
}

impl Preprocessor {
    /// Creates a preprocessor with `operators` (`K ≥ 1`) and `hops` (`R`).
    ///
    /// # Panics
    ///
    /// Panics if `operators` is empty.
    pub fn new(operators: Vec<Operator>, hops: usize) -> Self {
        assert!(!operators.is_empty(), "at least one operator required");
        Preprocessor {
            operators,
            hops,
            num_shards: None,
            num_partitions: None,
            writer_queue: None,
            store_dtype: None,
        }
    }

    /// Pins the number of node-range shards per operator pass.
    ///
    /// `1` forces the sequential per-operator schedule (the PR 2
    /// behaviour); `≥ 2` enables the shard×operator scheduler regardless
    /// of problem size. Without this (and without `PPGNN_NUM_SHARDS`),
    /// the shard count is the worker-pool width, and tiny graphs below
    /// the parallel threshold fall back to the sequential schedule.
    pub fn with_num_shards(mut self, num_shards: usize) -> Self {
        self.num_shards = Some(num_shards.max(1));
        self
    }

    /// Pins the number of disjoint graph partitions the partitioned
    /// pipeline ([`Preprocessor::run_partitioned`] /
    /// [`Preprocessor::run_with_sharded_store`]) cuts the node space into.
    ///
    /// `1` reproduces the unpartitioned behaviour exactly (a single
    /// partition owns every node, the ghost set is empty, and a sharded
    /// store degenerates to one partition store whose hop files are
    /// byte-identical to the single-store layout). Without this (and
    /// without `PPGNN_NUM_PARTITIONS`), the partitioned entry points run
    /// with `P = 1`.
    pub fn with_num_partitions(mut self, num_partitions: usize) -> Self {
        self.num_partitions = Some(num_partitions.max(1));
        self
    }

    /// Pins the async hop-writer queue depth used by
    /// [`Preprocessor::run_with_store`] and the per-partition writers of
    /// [`Preprocessor::run_with_sharded_store`] (default:
    /// `PPGNN_WRITER_QUEUE`, else [`DEFAULT_WRITER_QUEUE`]).
    pub fn with_writer_queue(mut self, depth: usize) -> Self {
        self.writer_queue = Some(depth.max(1));
        self
    }

    /// Pins the element encoding of every hop-feature store this
    /// preprocessor writes ([`Preprocessor::run_with_store`] and the
    /// partition stores of [`Preprocessor::run_with_sharded_store`]).
    /// Without this, the dtype comes from `PPGNN_STORE_DTYPE`, defaulting
    /// to lossless [`StoreDtype::F32`].
    pub fn with_store_dtype(mut self, dtype: StoreDtype) -> Self {
        self.store_dtype = Some(dtype);
        self
    }

    /// Number of hops `R`.
    pub fn hops(&self) -> usize {
        self.hops
    }

    /// Operators `B_1..B_K`.
    pub fn operators(&self) -> &[Operator] {
        &self.operators
    }

    /// SpMM invocations a full run costs, per operator (in operator
    /// order): `spmm_count × R` each. The preprocessing-time models and
    /// the bench artifact derive traffic estimates from this.
    pub fn spmm_invocations_per_operator(&self) -> Vec<usize> {
        self.operators
            .iter()
            .map(|op| op.spmm_count() * self.hops)
            .collect()
    }

    /// Total SpMM invocations across all operators for a full run.
    pub fn total_spmm_invocations(&self) -> usize {
        self.spmm_invocations_per_operator().iter().sum()
    }

    /// Resolves the shard count: pinned value, else `PPGNN_NUM_SHARDS`,
    /// else the pool width. The bool reports whether the count was pinned
    /// explicitly (builder or environment) — explicit counts are honored
    /// even below the parallel threshold, so tests exercise the sharded
    /// schedule deterministically on any machine.
    fn resolved_num_shards(&self, pool: &WorkerPool) -> (usize, bool) {
        if let Some(n) = self.num_shards {
            return (n.max(1), true);
        }
        if let Some(n) = knobs::usize_value(knobs::NUM_SHARDS) {
            return (n, true);
        }
        (pool.num_threads(), false)
    }

    /// Resolves the partition count: pinned value, else
    /// `PPGNN_NUM_PARTITIONS`, else 1.
    fn resolved_num_partitions(&self) -> usize {
        if let Some(n) = self.num_partitions {
            return n.max(1);
        }
        knobs::usize_value(knobs::NUM_PARTITIONS).unwrap_or(1)
    }

    /// Resolves the store encoding: pinned value, else
    /// `PPGNN_STORE_DTYPE`, else `f32`.
    fn resolved_store_dtype(&self) -> StoreDtype {
        self.store_dtype.unwrap_or_else(StoreDtype::from_env)
    }

    fn resolved_writer_queue(&self) -> usize {
        self.writer_queue
            .or_else(|| knobs::usize_value(knobs::WRITER_QUEUE))
            .unwrap_or(DEFAULT_WRITER_QUEUE)
            .max(1)
    }

    /// Groups operator indices for concurrent scheduling.
    ///
    /// Single-SpMM operators (`SymNorm`/`RowNorm`) are grouped up to the
    /// residency cap `⌊(R + 2) / 2⌋`: a group of `g` operators holds `2g`
    /// full-graph ping-pong buffers, and the cap keeps `2g ≤ R + 2`, one
    /// full-graph matrix inside the `(R + 3)`-matrix budget
    /// `tests/preprocess_residency.rs` pins (the spare absorbs the group's
    /// extra CSR bases). Diffusion-series operators (`Ppr`/`Heat`) are
    /// internally sequential chains and always form singleton groups. With
    /// `num_shards ≤ 1` every operator is its own group — the sequential
    /// PR 2 schedule.
    fn operator_groups(&self, num_shards: usize) -> Vec<Vec<usize>> {
        if num_shards <= 1 {
            return (0..self.operators.len()).map(|k| vec![k]).collect();
        }
        let cap = ((self.hops + 2) / 2).max(1);
        let mut groups: Vec<Vec<usize>> = Vec::new();
        let mut current: Vec<usize> = Vec::new();
        for (ki, op) in self.operators.iter().enumerate() {
            if op.is_diffusion_series() {
                if !current.is_empty() {
                    groups.push(std::mem::take(&mut current));
                }
                groups.push(vec![ki]);
            } else {
                current.push(ki);
                if current.len() == cap {
                    groups.push(std::mem::take(&mut current));
                }
            }
        }
        if !current.is_empty() {
            groups.push(current);
        }
        groups
    }

    /// Runs pre-propagation on `data`.
    ///
    /// This is the shard-scheduled pipeline: operators are grouped (see
    /// `operator_groups`), each group diffuses hop-by-hop through
    /// per-operator ping-pong full-graph buffers, and every hop step
    /// submits one task per (shard, operator) — a serial
    /// [`WeightedCsr::spmm_rows_into`] over an nnz-balanced node range —
    /// to the shared worker pool, so the pool stays full across operator
    /// boundaries instead of draining at the tail of every pass. Labeled
    /// rows are gathered straight into each operator's column block of the
    /// partition outputs as hops complete. Results are bit-identical to
    /// the sequential per-operator schedule at any shard count.
    pub fn run(&self, data: &SynthDataset) -> PrepropOutput {
        self.run_on(data, pool::pool())
    }

    /// [`Preprocessor::run`] on an explicit worker pool.
    ///
    /// The global pool is sized once from the environment; width sweeps
    /// (benchmarks, the shard regression tests) pass their own pool here,
    /// mirroring [`WeightedCsr::spmm_into_on`]. Shard tasks and nested
    /// kernel fan-outs reuse this handle.
    pub fn run_on(&self, data: &SynthDataset, pool: &WorkerPool) -> PrepropOutput {
        self.run_streaming(data, None, pool)
            .expect("in-memory preprocessing performs no I/O")
    }

    /// Runs pre-propagation and **writes the training partition through**
    /// to a [`FeatureStore`] as each hop completes (the Section 4.3
    /// file-per-hop layout), instead of materializing everything and
    /// persisting afterwards.
    ///
    /// Persistence is asynchronous: finished hops travel over a bounded
    /// channel (depth [`Preprocessor::with_writer_queue`]) to a dedicated
    /// [`AsyncHopWriter`] thread, so hop `r + 1` diffusion overlaps hop
    /// `r` storage I/O. Write failures are latched by the writer and
    /// surfaced here once diffusion finishes (or at the first submission
    /// after the failure, whichever comes first).
    ///
    /// Equivalent on success to `run` followed by
    /// [`PrepropOutput::write_store`], without holding the store contents
    /// twice — and byte-identical to the synchronous path on disk.
    ///
    /// The run is **resumable**: each committed hop file is journaled, so
    /// if a previous run of the same geometry was interrupted (crash,
    /// injected fault), this call re-diffuses but skips re-writing the
    /// hops the journal proves complete — the finished store is
    /// byte-identical to an uninterrupted run.
    ///
    /// # Errors
    ///
    /// Propagates store-creation and write failures.
    pub fn run_with_store(
        &self,
        data: &SynthDataset,
        dir: impl AsRef<std::path::Path>,
        dataset: &str,
        chunk_size: usize,
    ) -> Result<(PrepropOutput, FeatureStore), DataIoError> {
        let f = data.features.cols();
        let meta = StoreMeta {
            dataset: dataset.to_string(),
            num_hops: self.hops + 1,
            rows: data.split.train.len(),
            cols: self.operators.len() * f,
            chunk_size,
            dtype: self.resolved_store_dtype(),
        };
        let mut writer = AsyncHopWriter::create_or_resume(dir, meta, self.resolved_writer_queue())?;
        match self.run_streaming(data, Some(&mut writer), pool::pool()) {
            Ok(mut out) => {
                let stats = writer.stats();
                out.expansion.telemetry.writer_queue_hwm = stats.queue_hwm as u64;
                out.expansion.telemetry.writer_block_ns = stats.submit_block_ns;
                let store = writer.finish()?;
                Ok((out, store))
            }
            // A failed submit returns a fail-fast placeholder; the write
            // error the writer latched is the actual cause — report that.
            Err(e) => Err(writer.take_failure().unwrap_or(e)),
        }
    }

    fn run_streaming(
        &self,
        data: &SynthDataset,
        mut sink: Option<&mut AsyncHopWriter>,
        pool: &WorkerPool,
    ) -> Result<PrepropOutput, DataIoError> {
        let start = Instant::now();
        let _prep_span = ppgnn_telemetry::span("preprocess");
        let n = data.graph.num_nodes();
        let f = data.features.cols();
        let k_ops = self.operators.len();
        let kf = k_ops * f;
        // Per-hop wall time, accumulated across operator groups. One
        // `Instant` pair per (group, hop) — negligible against a
        // diffusion pass, so it is unconditional, not trace-gated.
        let mut hop_ns = vec![0u64; self.hops + 1];

        let ids_by_part: [&[usize]; 3] = [&data.split.train, &data.split.val, &data.split.test];
        let mut hops_by_part: Vec<Vec<Matrix>> = ids_by_part
            .iter()
            .map(|ids| {
                (0..=self.hops)
                    .map(|_| Matrix::zeros(ids.len(), kf))
                    .collect()
            })
            .collect();

        let (num_shards, shards_pinned) = self.resolved_num_shards(pool);
        let groups = self.operator_groups(num_shards);
        let num_groups = groups.len();

        // Per-operator ping-pong propagation buffers, allocated to the
        // largest group's width on demand and reused across groups.
        let mut currents: Vec<Matrix> = Vec::new();
        let mut nexts: Vec<Matrix> = Vec::new();

        for (gi, group) in groups.iter().enumerate() {
            let last_group = gi + 1 == num_groups;
            let hop0_t0 = Instant::now();
            // Hop 0 is the raw features, gathered directly from the input
            // into each group member's column block.
            for &ki in group {
                let col = ki * f;
                for (ids, hops) in ids_by_part.iter().zip(hops_by_part.iter_mut()) {
                    data.features
                        .gather_rows_into_offset(ids, &mut hops[0], col);
                }
            }
            if last_group {
                // Every operator has filled its hop-0 column block by now
                // (earlier groups ran to completion first). Hops an
                // interrupted run already committed (per the journal) are
                // not resubmitted — their bytes are on disk.
                if let Some(writer) = sink.as_deref_mut() {
                    if !writer.resumed_hops()[0] {
                        writer.submit(0, hops_by_part[0][0].clone())?;
                    }
                }
            }
            hop_ns[0] += hop0_t0.elapsed().as_nanos() as u64;
            if self.hops == 0 {
                continue;
            }

            let bases: Vec<WeightedCsr> = group
                .iter()
                .map(|&ki| self.operators[ki].base(&data.graph))
                .collect();
            while currents.len() < group.len() {
                currents.push(Matrix::zeros(n, f));
                nexts.push(Matrix::zeros(n, f));
            }
            for current in currents.iter_mut().take(group.len()) {
                current.copy_from(&data.features);
            }

            // Shard the row space once per group (group members share one
            // sparsity structure). Series operators never shard; auto
            // (unpinned) shard counts fall back to the sequential schedule
            // below the parallel threshold, like every pooled kernel.
            let series = self.operators[group[0]].is_diffusion_series();
            let work = bases.iter().map(|b| b.nnz()).max().unwrap_or(0) * f;
            let sharded =
                !series && num_shards > 1 && (shards_pinned || work > pool::parallel_threshold());
            let plan = ShardPlan::for_operator(&bases[0], num_shards);

            for r in 1..=self.hops {
                let hop_t0 = Instant::now();
                let _hop_span =
                    ppgnn_telemetry::span_with("hop", &[("r", r as u64), ("group", gi as u64)]);
                if sharded {
                    let mut tasks: Vec<Box<dyn FnOnce() + Send + '_>> =
                        Vec::with_capacity(group.len() * plan.num_shards());
                    for (slot, next) in nexts.iter_mut().take(group.len()).enumerate() {
                        let base = &bases[slot];
                        let cur = &currents[slot];
                        let mut rest = next.as_mut_slice();
                        for range in plan.ranges() {
                            let (slab, tail) = rest.split_at_mut(range.len() * f);
                            rest = tail;
                            let range = range.clone();
                            tasks.push(Box::new(move || base.spmm_rows_into(range, cur, slab)));
                        }
                        debug_assert!(rest.is_empty(), "shard plan must tile the buffer");
                    }
                    pool.run(tasks);
                } else {
                    for (slot, &ki) in group.iter().enumerate() {
                        self.operators[ki].apply_with_base_into_on(
                            &bases[slot],
                            &currents[slot],
                            &mut nexts[slot],
                            pool,
                        );
                    }
                }
                for slot in 0..group.len() {
                    std::mem::swap(&mut currents[slot], &mut nexts[slot]);
                }
                for (slot, &ki) in group.iter().enumerate() {
                    let col = ki * f;
                    for (ids, hops) in ids_by_part.iter().zip(hops_by_part.iter_mut()) {
                        currents[slot].gather_rows_into_offset(ids, &mut hops[r], col);
                    }
                }
                if last_group {
                    if let Some(writer) = sink.as_deref_mut() {
                        // The clone is the write-side double buffer: at most
                        // queue-depth + 1 extra train-hop matrices are in
                        // flight, owned by the writer thread while diffusion
                        // continues — train-partition-sized, not full-graph.
                        // Journaled (resumed) hops skip the clone + write.
                        if !writer.resumed_hops()[r] {
                            writer.submit(r, hops_by_part[0][r].clone())?;
                        }
                    }
                }
                hop_ns[r] += hop_t0.elapsed().as_nanos() as u64;
            }
        }

        let mut parts = hops_by_part.into_iter();
        let mut extract = |ids: &[usize]| -> PrepropFeatures {
            PrepropFeatures {
                hops: parts.next().expect("three partitions"),
                labels: data.labels_of(ids),
                node_ids: ids.to_vec(),
            }
        };
        let train = extract(&data.split.train);
        let val = extract(&data.split.val);
        let test = extract(&data.split.test);

        let preprocess_seconds = start.elapsed().as_secs_f64();
        for &ns in &hop_ns {
            PREP_HOP_NS.record(ns);
        }
        // Account what the run materialized, not what a formula predicts:
        // retained rows and expanded bytes come from the three partitions'
        // actual hop matrices.
        let retained_rows = (train.len() + val.len() + test.len()) as u64;
        let expansion = ExpansionReport {
            raw_bytes: retained_rows * (f as u64) * 4,
            expanded_bytes: train.size_bytes() + val.size_bytes() + test.size_bytes(),
            retained_rows,
            num_operators: k_ops,
            hops: self.hops,
            partitions: Vec::new(),
            telemetry: PrepTelemetry {
                hop_ns,
                ..PrepTelemetry::default()
            },
        };
        Ok(PrepropOutput {
            train,
            val,
            test,
            preprocess_seconds,
            expansion,
        })
    }

    /// Runs pre-propagation through the **partition-parallel** engine:
    /// the graph is cut into [`Preprocessor::with_num_partitions`] (or
    /// `PPGNN_NUM_PARTITIONS`) disjoint node partitions by the default
    /// nnz-balanced [`RangeCutPartitioner`], each partition diffuses its
    /// own rows with a per-hop ghost-row exchange, and labeled rows are
    /// gathered exactly as [`Preprocessor::run`] gathers them. Results are
    /// **bit-identical** to `run` at any partition count (pinned by
    /// `tests/partition_equivalence.rs`); `expansion.partitions` carries
    /// the per-partition balance table.
    pub fn run_partitioned(&self, data: &SynthDataset) -> PrepropOutput {
        self.run_partitioned_on(data, pool::pool())
    }

    /// [`Preprocessor::run_partitioned`] on an explicit worker pool.
    pub fn run_partitioned_on(&self, data: &SynthDataset, pool: &WorkerPool) -> PrepropOutput {
        self.run_partitioned_with(data, &RangeCutPartitioner, pool)
    }

    /// [`Preprocessor::run_partitioned`] with an explicit
    /// [`Partitioner`] strategy (e.g.
    /// [`ppgnn_graph::BfsGrowPartitioner`] for locality-first cuts).
    pub fn run_partitioned_with(
        &self,
        data: &SynthDataset,
        partitioner: &dyn Partitioner,
        pool: &WorkerPool,
    ) -> PrepropOutput {
        let engine = self.partition_engine(data, partitioner);
        self.run_partitioned_streaming(data, &engine, None, pool)
            .expect("in-memory partitioned preprocessing performs no I/O")
    }

    /// Runs the partitioned pipeline **and** writes each partition's
    /// training rows through its own async writer into a per-partition
    /// feature store under a [`ppgnn_dataio::ShardedStoreManifest`] — the
    /// partition-parallel counterpart of
    /// [`Preprocessor::run_with_store`]. Partition `p`'s store holds the
    /// training rows of the nodes it owns, in global training order, so
    /// every stored row is **byte-identical** to the same row of the
    /// single-store layout; with `P = 1` the lone partition store's hop
    /// files are byte-identical to [`Preprocessor::run_with_store`]'s.
    ///
    /// Like [`Preprocessor::run_with_store`], the run is resumable: each
    /// partition journals its committed hops, and an interrupted run of
    /// the same geometry skips re-writing the `(partition, hop)` units
    /// already proven complete.
    ///
    /// # Errors
    ///
    /// Propagates store-creation and write failures (reporting the
    /// latched write cause, not the fail-fast placeholder, when a submit
    /// aborts the run).
    pub fn run_with_sharded_store(
        &self,
        data: &SynthDataset,
        dir: impl AsRef<std::path::Path>,
        dataset: &str,
        chunk_size: usize,
    ) -> Result<(PrepropOutput, ShardedFeatureStore), DataIoError> {
        self.run_with_sharded_store_using(
            data,
            &RangeCutPartitioner,
            dir,
            dataset,
            chunk_size,
            pool::pool(),
        )
    }

    /// [`Preprocessor::run_with_sharded_store`] with an explicit
    /// partitioner and worker pool.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Preprocessor::run_with_sharded_store`].
    pub fn run_with_sharded_store_using(
        &self,
        data: &SynthDataset,
        partitioner: &dyn Partitioner,
        dir: impl AsRef<std::path::Path>,
        dataset: &str,
        chunk_size: usize,
        pool: &WorkerPool,
    ) -> Result<(PrepropOutput, ShardedFeatureStore), DataIoError> {
        let engine = self.partition_engine(data, partitioner);
        let plan = engine.plan();
        let f = data.features.cols();
        // Global training rows owned by each partition, in global training
        // order — store `p`'s local row `j` is training row
        // `rows_by_part[p][j]`.
        let mut rows_by_part: Vec<Vec<usize>> = vec![Vec::new(); plan.num_partitions()];
        let mut nodes_by_part: Vec<Vec<usize>> = vec![Vec::new(); plan.num_partitions()];
        for (i, &v) in data.split.train.iter().enumerate() {
            rows_by_part[plan.owner(v)].push(i);
            nodes_by_part[plan.owner(v)].push(v);
        }
        let meta = StoreMeta {
            dataset: dataset.to_string(),
            num_hops: self.hops + 1,
            rows: data.split.train.len(),
            cols: self.operators.len() * f,
            chunk_size,
            dtype: self.resolved_store_dtype(),
        };
        let mut writer = ShardedStoreWriter::create_or_resume(
            dir,
            meta,
            &rows_by_part,
            self.resolved_writer_queue(),
        )?;
        match self.run_partitioned_streaming(
            data,
            &engine,
            Some((&mut writer, &nodes_by_part)),
            pool,
        ) {
            Ok(mut out) => {
                let stats = writer.writer_stats();
                out.expansion.telemetry.writer_queue_hwm = stats.queue_hwm as u64;
                out.expansion.telemetry.writer_block_ns = stats.submit_block_ns;
                let store = writer.finish()?;
                for stat in &mut out.expansion.partitions {
                    stat.store_bytes = store.partition_meta(stat.partition).total_bytes();
                }
                Ok((out, store))
            }
            // A failed submit returns a fail-fast placeholder; the write
            // error a partition writer latched is the actual cause.
            Err(e) => Err(writer.take_failure().unwrap_or(e)),
        }
    }

    fn partition_engine(
        &self,
        data: &SynthDataset,
        partitioner: &dyn Partitioner,
    ) -> PartitionedDiffusion {
        let plan = partitioner.partition(&data.graph, self.resolved_num_partitions());
        PartitionedDiffusion::new(&data.graph, self.operators.clone(), self.hops, plan)
    }

    /// The partitioned analog of `run_streaming`: hop views are gathered
    /// into the three labeled partitions' column blocks exactly like the
    /// single-domain engine, and (optionally) each graph partition's
    /// training rows are submitted to its async store writer as every hop
    /// completes.
    fn run_partitioned_streaming(
        &self,
        data: &SynthDataset,
        engine: &PartitionedDiffusion,
        mut sink: Option<(&mut ShardedStoreWriter, &[Vec<usize>])>,
        pool: &WorkerPool,
    ) -> Result<PrepropOutput, DataIoError> {
        let start = Instant::now();
        let _prep_span = ppgnn_telemetry::span("preprocess");
        let f = data.features.cols();
        let k_ops = self.operators.len();
        let kf = k_ops * f;
        // Hop `r`'s time is the wall clock between successive hop
        // callbacks (the engine invokes the callback once per finished
        // hop, hop 0 first), so diffusion and the ghost exchange are
        // attributed to the hop they produced.
        let mut hop_ns = vec![0u64; self.hops + 1];
        let mut hop_clock = Instant::now();
        let ids_by_part: [&[usize]; 3] = [&data.split.train, &data.split.val, &data.split.test];
        let mut hops_by_part: Vec<Vec<Matrix>> = ids_by_part
            .iter()
            .map(|ids| {
                (0..=self.hops)
                    .map(|_| Matrix::zeros(ids.len(), kf))
                    .collect()
            })
            .collect();

        // Task granularity: reuse the shard knob so `PPGNN_NUM_SHARDS`
        // bounds per-partition SpMM tasks too; the cut never affects
        // results.
        let (task_shards, _) = self.resolved_num_shards(pool);
        engine.run::<DataIoError>(&data.features, pool, task_shards, |r, view| {
            hop_ns[r] += hop_clock.elapsed().as_nanos() as u64;
            let _hop_span = ppgnn_telemetry::span_with("hop_gather", &[("r", r as u64)]);
            for k in 0..k_ops {
                let col = k * f;
                for (ids, hops) in ids_by_part.iter().zip(hops_by_part.iter_mut()) {
                    view.gather_rows_into_offset(k, ids, &mut hops[r], col);
                }
            }
            if let Some((writer, nodes_by_part)) = sink.as_mut() {
                for (p, nodes) in nodes_by_part.iter().enumerate() {
                    // (partition, hop) units an interrupted run already
                    // committed (per that partition's journal) are not
                    // regathered or resubmitted.
                    if writer.resumed_hops(p)[r] {
                        continue;
                    }
                    let mut rows = Matrix::zeros(nodes.len(), kf);
                    for k in 0..k_ops {
                        view.gather_rows_into_offset(k, nodes, &mut rows, k * f);
                    }
                    writer.submit(p, r, rows)?;
                }
            }
            hop_clock = Instant::now();
            Ok(())
        })?;

        let mut parts = hops_by_part.into_iter();
        let mut extract = |ids: &[usize]| -> PrepropFeatures {
            PrepropFeatures {
                hops: parts.next().expect("three partitions"),
                labels: data.labels_of(ids),
                node_ids: ids.to_vec(),
            }
        };
        let train = extract(&data.split.train);
        let val = extract(&data.split.val);
        let test = extract(&data.split.test);

        let mut partitions = engine.partition_stats();
        let plan = engine.plan();
        for &v in &data.split.train {
            partitions[plan.owner(v)].train_rows += 1;
        }

        let preprocess_seconds = start.elapsed().as_secs_f64();
        for &ns in &hop_ns {
            PREP_HOP_NS.record(ns);
        }
        let retained_rows = (train.len() + val.len() + test.len()) as u64;
        let expansion = ExpansionReport {
            raw_bytes: retained_rows * (f as u64) * 4,
            expanded_bytes: train.size_bytes() + val.size_bytes() + test.size_bytes(),
            retained_rows,
            num_operators: k_ops,
            hops: self.hops,
            partitions,
            telemetry: PrepTelemetry {
                hop_ns,
                ..PrepTelemetry::default()
            },
        };
        Ok(PrepropOutput {
            train,
            val,
            test,
            preprocess_seconds,
            expansion,
        })
    }
}

impl PrepropOutput {
    /// Persists the **training** partition to a feature store (the
    /// Section 4.3 file-per-hop layout), synchronously.
    ///
    /// # Errors
    ///
    /// Propagates store-creation and write failures.
    pub fn write_store(
        &self,
        dir: impl AsRef<std::path::Path>,
        dataset: &str,
        chunk_size: usize,
    ) -> Result<FeatureStore, DataIoError> {
        let rows = self.train.len();
        let cols = self.train.hops.first().map(|h| h.cols()).unwrap_or(0);
        let meta = StoreMeta {
            dataset: dataset.to_string(),
            num_hops: self.train.hops.len(),
            rows,
            cols,
            chunk_size,
            dtype: StoreDtype::from_env(),
        };
        let mut writer = ppgnn_dataio::FeatureStoreWriter::create(dir, meta)?;
        for (k, hop) in self.train.hops.iter().enumerate() {
            writer.write_hop(k, hop)?;
        }
        writer.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppgnn_graph::synth::DatasetProfile;

    fn small_data() -> SynthDataset {
        SynthDataset::generate(DatasetProfile::pokec_sim().scaled(0.02), 3).unwrap()
    }

    #[test]
    fn produces_r_plus_one_hops_per_partition() {
        let data = small_data();
        let out = Preprocessor::new(vec![Operator::SymNorm], 3).run(&data);
        assert_eq!(out.train.hops.len(), 4);
        assert_eq!(out.val.hops.len(), 4);
        assert_eq!(out.train.len(), data.split.train.len());
        assert_eq!(out.test.len(), data.split.test.len());
        // hop 0 is the raw features of the partition rows
        let raw = data.features.gather_rows(&data.split.train);
        assert!(out.train.hops[0].max_abs_diff(&raw) < 1e-7);
    }

    #[test]
    fn hop_r_equals_r_applications_of_the_operator() {
        let data = small_data();
        let out = Preprocessor::new(vec![Operator::SymNorm], 2).run(&data);
        let mut expected = data.features.clone();
        for _ in 0..2 {
            expected = Operator::SymNorm.apply(&data.graph, &expected);
        }
        let expected_rows = expected.gather_rows(&data.split.train);
        assert!(out.train.hops[2].max_abs_diff(&expected_rows) < 1e-4);
    }

    #[test]
    fn multi_operator_concatenates_features() {
        let data = small_data();
        let f = data.profile.feature_dim;
        let out = Preprocessor::new(vec![Operator::SymNorm, Operator::RowNorm], 1).run(&data);
        assert_eq!(out.train.hops[0].cols(), 2 * f);
        assert_eq!(out.expansion.num_operators, 2);
        assert!((out.expansion.factor() - 4.0).abs() < 1e-9); // K(R+1) = 2·2
    }

    #[test]
    fn expansion_report_matches_materialized_partitions() {
        let data = small_data();
        let out = Preprocessor::new(vec![Operator::SymNorm], 3).run(&data);
        assert!((out.expansion.factor() - 4.0).abs() < 1e-9);
        assert_eq!(
            out.expansion.expanded_bytes,
            out.train.size_bytes() + out.val.size_bytes() + out.test.size_bytes()
        );
        assert_eq!(
            out.expansion.retained_rows as usize,
            out.train.len() + out.val.len() + out.test.len()
        );
        assert_eq!(
            out.expansion.retained_rows as usize,
            data.split.num_labeled()
        );
    }

    #[test]
    fn spmm_invocation_accessors_follow_operator_costs() {
        let prep = Preprocessor::new(vec![Operator::SymNorm, Operator::Ppr { alpha: 0.15 }], 3);
        let per_op = prep.spmm_invocations_per_operator();
        assert_eq!(per_op.len(), 2);
        assert_eq!(per_op[0], 3); // one SpMM per hop
        assert_eq!(per_op[1], Operator::Ppr { alpha: 0.15 }.spmm_count() * 3);
        assert_eq!(prep.total_spmm_invocations(), per_op.iter().sum::<usize>());
    }

    #[test]
    fn partial_labels_shrink_retained_rows() {
        let data =
            SynthDataset::generate(DatasetProfile::papers100m_sim().scaled(0.05), 1).unwrap();
        let out = Preprocessor::new(vec![Operator::SymNorm], 2).run(&data);
        let labeled = data.split.num_labeled();
        assert_eq!(out.train.len() + out.val.len() + out.test.len(), labeled);
        // expanded bytes ≪ full-graph raw bytes — the papers100M effect
        let full_raw = (data.graph.num_nodes() * data.profile.feature_dim * 4) as u64;
        assert!(out.expansion.expanded_bytes < full_raw / 5);
    }

    #[test]
    fn zero_hops_keeps_raw_features_only() {
        let data = small_data();
        let out = Preprocessor::new(vec![Operator::SymNorm], 0).run(&data);
        assert_eq!(out.train.hops.len(), 1);
        assert!((out.expansion.factor() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sharded_run_is_bit_identical_to_sequential() {
        let data = small_data();
        for ops in [
            vec![Operator::SymNorm],
            vec![Operator::SymNorm, Operator::RowNorm],
            vec![
                Operator::SymNorm,
                Operator::Ppr { alpha: 0.2 },
                Operator::RowNorm,
            ],
        ] {
            let sequential = Preprocessor::new(ops.clone(), 3)
                .with_num_shards(1)
                .run(&data);
            for shards in [3, 7] {
                let sharded = Preprocessor::new(ops.clone(), 3)
                    .with_num_shards(shards)
                    .run(&data);
                for (part, (a, b)) in [
                    (&sequential.train, &sharded.train),
                    (&sequential.val, &sharded.val),
                    (&sequential.test, &sharded.test),
                ]
                .iter()
                .enumerate()
                .map(|(i, p)| (i, *p))
                {
                    for r in 0..=3 {
                        assert_eq!(
                            a.hops[r].as_slice(),
                            b.hops[r].as_slice(),
                            "ops {ops:?} shards {shards} partition {part} hop {r}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn explicit_pool_run_matches_global_pool_run() {
        let data = small_data();
        let prep =
            Preprocessor::new(vec![Operator::SymNorm, Operator::RowNorm], 2).with_num_shards(4);
        let global = prep.run(&data);
        let pool = WorkerPool::new(4);
        let explicit = prep.run_on(&data, &pool);
        for r in 0..=2 {
            assert_eq!(
                global.train.hops[r].as_slice(),
                explicit.train.hops[r].as_slice()
            );
        }
    }

    #[test]
    fn operator_groups_respect_residency_cap_and_series_isolation() {
        let prep = Preprocessor::new(
            vec![
                Operator::SymNorm,
                Operator::RowNorm,
                Operator::Ppr { alpha: 0.2 },
                Operator::SymNorm,
            ],
            3,
        );
        // R=3 → cap ⌊5/2⌋ = 2 concurrent simple operators.
        let groups = prep.operator_groups(8);
        assert_eq!(groups, vec![vec![0, 1], vec![2], vec![3]]);
        // Sequential mode: every operator alone, in order.
        let seq = prep.operator_groups(1);
        assert_eq!(seq, vec![vec![0], vec![1], vec![2], vec![3]]);
        // R=1 → cap 1: no grouping even when sharded.
        let narrow = Preprocessor::new(vec![Operator::SymNorm, Operator::RowNorm], 1);
        assert_eq!(narrow.operator_groups(8), vec![vec![0], vec![1]]);
    }

    #[test]
    fn partitioned_run_is_bit_identical_to_run() {
        let data = small_data();
        let ops = vec![Operator::SymNorm, Operator::RowNorm];
        let reference = Preprocessor::new(ops.clone(), 3).run(&data);
        for parts in [1, 2, 5] {
            let partitioned = Preprocessor::new(ops.clone(), 3)
                .with_num_partitions(parts)
                .run_partitioned(&data);
            for (a, b) in [
                (&reference.train, &partitioned.train),
                (&reference.val, &partitioned.val),
                (&reference.test, &partitioned.test),
            ] {
                for r in 0..=3 {
                    let same = a.hops[r]
                        .as_slice()
                        .iter()
                        .zip(b.hops[r].as_slice())
                        .all(|(x, y)| x.to_bits() == y.to_bits());
                    assert!(same, "P={parts} hop {r} not bit-identical");
                }
            }
            let num_parts = partitioned.expansion.partitions.len();
            assert!((1..=parts).contains(&num_parts));
            let stat_rows: usize = partitioned
                .expansion
                .partitions
                .iter()
                .map(|s| s.rows)
                .sum();
            assert_eq!(stat_rows, data.graph.num_nodes());
            let train_rows: usize = partitioned
                .expansion
                .partitions
                .iter()
                .map(|s| s.train_rows)
                .sum();
            assert_eq!(train_rows, data.split.train.len());
            // Apart from the partition table and run-specific timings,
            // accounting matches.
            let mut expansion = partitioned.expansion.clone();
            expansion.partitions = Vec::new();
            expansion.telemetry = PrepTelemetry::default();
            let mut ref_expansion = reference.expansion.clone();
            ref_expansion.telemetry = PrepTelemetry::default();
            assert_eq!(expansion, ref_expansion);
        }
    }

    #[test]
    fn sharded_store_serves_rows_identical_to_single_store() {
        let data = small_data();
        let prep = Preprocessor::new(vec![Operator::SymNorm], 2);
        let base = std::env::temp_dir().join(format!("ppgnn-shardstore-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        let (_, mut single) = prep
            .run_with_store(&data, base.join("single"), "pokec-sim", 16)
            .unwrap();
        let (out, mut sharded) = prep
            .clone()
            .with_num_partitions(3)
            .run_with_sharded_store(&data, base.join("sharded"), "pokec-sim", 16)
            .unwrap();
        assert_eq!(sharded.meta().rows, single.meta().rows);
        for k in 0..=2 {
            let a = single.read_full_hop(k).unwrap();
            let b = sharded.read_full_hop(k).unwrap();
            assert_eq!(a.as_slice(), b.as_slice(), "hop {k} differs");
        }
        // Store-bytes stats were filled in from the partition stores.
        let bytes: u64 = out.expansion.partitions.iter().map(|s| s.store_bytes).sum();
        assert_eq!(bytes, single.meta().total_bytes());
        std::fs::remove_dir_all(&base).unwrap();
    }

    #[test]
    fn write_through_store_matches_post_hoc_write() {
        let data = small_data();
        let prep = Preprocessor::new(vec![Operator::SymNorm, Operator::RowNorm], 2);
        let dir = std::env::temp_dir().join(format!("ppgnn-stream-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let (out, mut store) = prep.run_with_store(&data, &dir, "pokec-sim", 32).unwrap();
        let reference = prep.run(&data);
        assert_eq!(store.meta().num_hops, 3);
        assert_eq!(store.meta().cols, 2 * data.profile.feature_dim);
        for r in 0..=2 {
            assert!(out.train.hops[r].max_abs_diff(&reference.train.hops[r]) < 1e-7);
            let stored = store.read_full_hop(r).unwrap();
            assert!(stored.max_abs_diff(&reference.train.hops[r]) < 1e-7);
        }
        assert!(out.val.hops[1].max_abs_diff(&reference.val.hops[1]) < 1e-7);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn write_store_round_trips_training_rows() {
        let data = small_data();
        let out = Preprocessor::new(vec![Operator::SymNorm], 1).run(&data);
        let dir = std::env::temp_dir().join(format!("ppgnn-prep-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut store = out.write_store(&dir, "pokec-sim", 64).unwrap();
        let hop0 = store.read_full_hop(0).unwrap();
        assert!(hop0.max_abs_diff(&out.train.hops[0]) < 1e-7);
        let hop1 = store.read_full_hop(1).unwrap();
        assert!(hop1.max_abs_diff(&out.train.hops[1]) < 1e-7);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
