//! Property-based tests for the discrete-event engine and pipelines.

use ppgnn_memsim::engine::{Category, Sim};
use ppgnn_memsim::{pp_epoch, HardwareSpec, LoaderGen, Placement, PpWorkload};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn makespan_bounds_hold_for_random_chains(
        durations in prop::collection::vec(0.0f64..10.0, 1..40),
        two_resources in any::<bool>(),
    ) {
        let mut sim = Sim::new();
        let r1 = sim.resource("a");
        let r2 = if two_resources { sim.resource("b") } else { r1 };
        let mut prev = None;
        let total: f64 = durations.iter().sum();
        let max = durations.iter().copied().fold(0.0, f64::max);
        for (i, &d) in durations.iter().enumerate() {
            let r = if i % 2 == 0 { r1 } else { r2 };
            let deps: Vec<_> = prev.into_iter().collect();
            prev = Some(sim.task(r, d, &deps, Category::Other));
        }
        let s = sim.run();
        // a full chain serializes exactly
        prop_assert!((s.makespan() - total).abs() < 1e-9);
        prop_assert!(s.makespan() >= max - 1e-12);
    }

    #[test]
    fn independent_tasks_overlap_to_per_resource_busy(
        a in prop::collection::vec(0.1f64..5.0, 1..20),
        b in prop::collection::vec(0.1f64..5.0, 1..20),
    ) {
        let mut sim = Sim::new();
        let ra = sim.resource("a");
        let rb = sim.resource("b");
        for &d in &a {
            sim.task(ra, d, &[], Category::Other);
        }
        for &d in &b {
            sim.task(rb, d, &[], Category::Other);
        }
        let s = sim.run();
        let expect = a.iter().sum::<f64>().max(b.iter().sum::<f64>());
        prop_assert!((s.makespan() - expect).abs() < 1e-9);
    }

    #[test]
    fn pp_epoch_is_monotone_in_batch_bytes(
        rows in 1_000usize..100_000,
        row_bytes in 64u64..8192,
    ) {
        let spec = HardwareSpec::a6000_server();
        let make = |rb: u64| PpWorkload {
            num_train: rows,
            batch_size: 1000,
            row_bytes: rb,
            flops_per_example: 100_000,
            chunk_size: 1000,
            param_bytes: 1 << 20,
        };
        for gen in LoaderGen::all() {
            let small = pp_epoch(&spec, &make(row_bytes), gen, Placement::Host).epoch_time;
            let big = pp_epoch(&spec, &make(row_bytes * 2), gen, Placement::Host).epoch_time;
            prop_assert!(big >= small - 1e-12, "{:?} not monotone", gen.name());
        }
    }

    #[test]
    fn double_buffer_never_loses_to_single_buffer(
        rows in 10_000usize..200_000,
        flops in 10_000u64..10_000_000,
    ) {
        let spec = HardwareSpec::a6000_server();
        let w = PpWorkload {
            num_train: rows,
            batch_size: 2000,
            row_bytes: 1024,
            flops_per_example: flops,
            chunk_size: 2000,
            param_bytes: 1 << 20,
        };
        let fused = pp_epoch(&spec, &w, LoaderGen::FusedGather, Placement::Host).epoch_time;
        let dbuf = pp_epoch(&spec, &w, LoaderGen::DoubleBuffer, Placement::Host).epoch_time;
        prop_assert!(dbuf <= fused + 1e-9, "double buffer slower: {dbuf} vs {fused}");
    }

    #[test]
    fn epoch_time_scales_with_training_set(
        rows in 10_000usize..50_000,
    ) {
        let spec = HardwareSpec::a6000_server();
        let make = |n: usize| PpWorkload {
            num_train: n,
            batch_size: 1000,
            row_bytes: 2048,
            flops_per_example: 1_000_000,
            chunk_size: 1000,
            param_bytes: 1 << 20,
        };
        let t1 = pp_epoch(&spec, &make(rows), LoaderGen::DoubleBuffer, Placement::Gpu).epoch_time;
        let t2 = pp_epoch(&spec, &make(rows * 2), LoaderGen::DoubleBuffer, Placement::Gpu).epoch_time;
        let ratio = t2 / t1;
        prop_assert!((1.6..=2.4).contains(&ratio), "doubling rows gave {ratio:.2}x");
    }
}
