//! Schedule builders for every data-loading strategy in the paper.
//!
//! Each builder turns a workload descriptor plus a [`HardwareSpec`] into a
//! task graph and runs it, producing an [`EpochReport`]. The four PP-GNN
//! loader generations map onto Figure 6:
//!
//! * [`LoaderGen::Baseline`] — per-sample host gathers, one op launch per
//!   row, single device buffer (Figure 6a);
//! * [`LoaderGen::FusedGather`] — one fused index op per batch into a
//!   pinned buffer, async transfer, still single-buffered (Figure 6b);
//! * [`LoaderGen::DoubleBuffer`] — dedicated assembly thread + two device
//!   buffers, loading pipelined with compute (Figure 6c);
//! * [`LoaderGen::ChunkReshuffle`] — chunk-granular transfers and GPU-side
//!   assembly at HBM bandwidth (Figure 6d); with [`Placement::Ssd`], chunks
//!   stream from storage via GPUDirect (Section 4.3).

use crate::engine::{Category, Schedule, Sim, TaskId};
use crate::HardwareSpec;

/// Where the preprocessed input features live during training.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Placement {
    /// Preloaded into GPU memory.
    Gpu,
    /// Pinned in host memory.
    Host,
    /// On SSD, accessed via GPUDirect Storage.
    Ssd,
}

impl Placement {
    /// Display name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            Placement::Gpu => "gpu",
            Placement::Host => "host",
            Placement::Ssd => "ssd",
        }
    }
}

/// Data-loading generation (Section 4 optimizations, cumulative).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LoaderGen {
    /// PyTorch-DataLoader-style per-sample assembly.
    Baseline,
    /// One fused index operation per batch (Section 4.1, first half).
    FusedGather,
    /// Fused assembly + GPU double-buffer prefetching (Section 4.1).
    DoubleBuffer,
    /// Chunk reshuffling with GPU-side assembly (Section 4.2); the only
    /// generation supporting [`Placement::Ssd`] (Section 4.3).
    ChunkReshuffle,
}

impl LoaderGen {
    /// Display name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            LoaderGen::Baseline => "baseline",
            LoaderGen::FusedGather => "fused-assembly",
            LoaderGen::DoubleBuffer => "double-buffer",
            LoaderGen::ChunkReshuffle => "chunk-reshuffle",
        }
    }

    /// All generations in ablation order.
    pub fn all() -> [LoaderGen; 4] {
        [
            LoaderGen::Baseline,
            LoaderGen::FusedGather,
            LoaderGen::DoubleBuffer,
            LoaderGen::ChunkReshuffle,
        ]
    }
}

/// PP-GNN epoch workload, measured from the functional plane.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PpWorkload {
    /// Training examples per epoch.
    pub num_train: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Bytes of input per example across all `K(R+1)` hop matrices.
    pub row_bytes: u64,
    /// Forward+backward+optimizer FLOPs per example
    /// (`PpModel::flops_per_example`).
    pub flops_per_example: u64,
    /// Chunk size (rows) for chunk reshuffling.
    pub chunk_size: usize,
    /// Model parameter bytes (all-reduce volume).
    pub param_bytes: u64,
}

impl PpWorkload {
    /// Number of whole batches per epoch (trailing partial batch dropped,
    /// matching the training loop's `drop_last` behaviour).
    pub fn num_batches(&self) -> usize {
        self.num_train / self.batch_size
    }

    /// Bytes per batch.
    pub fn batch_bytes(&self) -> u64 {
        self.batch_size as u64 * self.row_bytes
    }

    /// Total input bytes after expansion (the Section 3.4 quantity).
    pub fn total_input_bytes(&self) -> u64 {
        self.num_train as u64 * self.row_bytes
    }
}

/// MP-GNN epoch workload, measured from the real samplers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MpWorkload {
    /// Training seeds per epoch.
    pub num_train: usize,
    /// Seeds per batch.
    pub batch_size: usize,
    /// Raw feature bytes per node row.
    pub feature_row_bytes: u64,
    /// Measured unique input nodes per batch (sampler statistic).
    pub input_nodes_per_batch: u64,
    /// Measured total edges per batch across layers (sampler statistic).
    pub edges_per_batch: u64,
    /// Measured model FLOPs per batch (`MpModel::flops_per_batch`).
    pub flops_per_batch: u64,
    /// Model parameter bytes.
    pub param_bytes: u64,
}

impl MpWorkload {
    /// Whole batches per epoch.
    pub fn num_batches(&self) -> usize {
        self.num_train / self.batch_size
    }
}

/// MP-GNN training-system variants compared in Figure 4 / Tables 3–5.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MpSystem {
    /// DGL with CPU sampling and host-resident features.
    VanillaCpu,
    /// GPU sampling with UVA zero-copy feature access.
    Uva,
    /// Everything preloaded in GPU memory.
    Preload,
    /// Storage-resident features with host-side caching (Ginex-like);
    /// `cache_hit_rate` of feature reads hit host memory.
    Storage {
        /// Fraction of feature bytes served from the host cache.
        cache_hit_rate: f64,
    },
}

impl MpSystem {
    /// Display name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            MpSystem::VanillaCpu => "dgl-vanilla",
            MpSystem::Uva => "dgl-uva",
            MpSystem::Preload => "dgl-preload",
            MpSystem::Storage { .. } => "ginex-storage",
        }
    }
}

/// Outcome of simulating one training epoch.
#[derive(Debug, Clone)]
pub struct EpochReport {
    /// Wall-clock epoch time, seconds.
    pub epoch_time: f64,
    /// Batches simulated.
    pub num_batches: usize,
    /// Full schedule (category breakdown, Gantt rendering).
    pub schedule: Schedule,
}

impl EpochReport {
    /// Epochs per second.
    pub fn throughput(&self) -> f64 {
        if self.epoch_time > 0.0 {
            1.0 / self.epoch_time
        } else {
            f64::INFINITY
        }
    }

    /// Fraction of busy time in data-loading categories (Figure 5).
    pub fn data_loading_fraction(&self) -> f64 {
        self.schedule.data_loading_fraction()
    }
}

/// Simulates one PP-GNN training epoch.
///
/// Invalid combinations ([`Placement::Ssd`] with a non-chunked loader —
/// SGD-RR random reads from storage, which the training system refuses, as
/// in Section 5) are still simulated faithfully so the harness can show
/// *why* the policy forbids them; the per-row random-read cost is charged.
///
/// # Panics
///
/// Panics if the workload has a zero batch size or the spec fails
/// validation.
pub fn pp_epoch(
    spec: &HardwareSpec,
    w: &PpWorkload,
    gen: LoaderGen,
    placement: Placement,
) -> EpochReport {
    spec.validate().expect("invalid hardware spec");
    assert!(w.batch_size > 0, "batch size must be positive");
    let num_batches = w.num_batches().max(1);
    let batch_bytes = w.batch_bytes();
    let compute_s = spec.compute_time(w.flops_per_example * w.batch_size as u64);

    let mut sim = Sim::new();
    let host = sim.resource("host");
    let dma = sim.resource("dma");
    let gpu_copy = sim.resource("gpu-copy");
    let gpu = sim.resource("gpu-compute");
    let ssd = sim.resource("ssd");

    let mut computes: Vec<TaskId> = Vec::with_capacity(num_batches);
    for i in 0..num_batches {
        // Buffer-reuse dependency: single buffer → wait on compute[i-1];
        // double buffer → wait on compute[i-2].
        let buffer_dep: Vec<TaskId> = match gen {
            LoaderGen::Baseline | LoaderGen::FusedGather => {
                if i >= 1 {
                    vec![computes[i - 1]]
                } else {
                    vec![]
                }
            }
            LoaderGen::DoubleBuffer | LoaderGen::ChunkReshuffle => {
                if i >= 2 {
                    vec![computes[i - 2]]
                } else {
                    vec![]
                }
            }
        };

        let ready = match (gen, placement) {
            // ---------- features resident in GPU memory ----------
            (LoaderGen::ChunkReshuffle, Placement::Gpu)
            | (LoaderGen::DoubleBuffer, Placement::Gpu) => {
                // on-device gather at HBM gather bandwidth, double buffered
                let t = spec.host_op_overhead + batch_bytes as f64 / spec.gpu_gather_bw;
                sim.task(gpu_copy, t, &buffer_dep, Category::GpuAssembly)
            }
            (LoaderGen::Baseline, Placement::Gpu) | (LoaderGen::FusedGather, Placement::Gpu) => {
                // per-batch gather kernel, single-buffered
                let t = spec.host_op_overhead + batch_bytes as f64 / spec.gpu_gather_bw;
                sim.task(gpu_copy, t, &buffer_dep, Category::GpuAssembly)
            }

            // ---------- features in host memory ----------
            (LoaderGen::Baseline, Placement::Host) => {
                // per-sample framework overhead + strided copy per sample,
                // then sync H2D
                let assemble_s = w.batch_size as f64 * spec.per_sample_overhead
                    + batch_bytes as f64 / spec.host_gather_bw;
                let a = sim.task(host, assemble_s, &buffer_dep, Category::HostGather);
                sim.task(dma, spec.h2d_time(batch_bytes), &[a], Category::Transfer)
            }
            (LoaderGen::FusedGather, Placement::Host) => {
                // one launch per batch; gather at full host bandwidth
                let assemble_s = spec.host_op_overhead + batch_bytes as f64 / spec.host_gather_bw;
                let a = sim.task(host, assemble_s, &buffer_dep, Category::HostGather);
                sim.task(dma, spec.h2d_time(batch_bytes), &[a], Category::Transfer)
            }
            (LoaderGen::DoubleBuffer, Placement::Host) => {
                // dedicated assembly thread + prefetch stream
                let assemble_s = spec.host_op_overhead + batch_bytes as f64 / spec.host_gather_bw;
                let a = sim.task(host, assemble_s, &buffer_dep, Category::HostGather);
                sim.task(dma, spec.h2d_time(batch_bytes), &[a], Category::Transfer)
            }
            (LoaderGen::ChunkReshuffle, Placement::Host) => {
                // per-chunk DMA directly from (sequential) host memory, then
                // GPU-side assembly
                let chunks = (w.batch_size.div_ceil(w.chunk_size)).max(1);
                let chunk_bytes = batch_bytes / chunks as u64;
                let mut last = None;
                for c in 0..chunks {
                    let deps: Vec<TaskId> = if c == 0 {
                        buffer_dep.clone()
                    } else {
                        vec![last.expect("set on previous iteration")]
                    };
                    last =
                        Some(sim.task(dma, spec.h2d_time(chunk_bytes), &deps, Category::Transfer));
                }
                let assemble = spec.host_op_overhead + batch_bytes as f64 / spec.gpu_gather_bw;
                sim.task(
                    gpu_copy,
                    assemble,
                    &[last.expect("at least one chunk")],
                    Category::GpuAssembly,
                )
            }

            // ---------- features on SSD ----------
            (LoaderGen::ChunkReshuffle, Placement::Ssd) => {
                // GPUDirect chunk reads, then GPU-side assembly
                let chunks = (w.batch_size.div_ceil(w.chunk_size)).max(1);
                let chunk_bytes = batch_bytes / chunks as u64;
                let mut last = None;
                for c in 0..chunks {
                    let deps: Vec<TaskId> = if c == 0 {
                        buffer_dep.clone()
                    } else {
                        vec![last.expect("set on previous iteration")]
                    };
                    let t = spec.ssd_req_overhead + chunk_bytes as f64 / spec.ssd_seq_bw;
                    last = Some(sim.task(ssd, t, &deps, Category::StorageRead));
                }
                let assemble = spec.host_op_overhead + batch_bytes as f64 / spec.gpu_gather_bw;
                sim.task(
                    gpu_copy,
                    assemble,
                    &[last.expect("at least one chunk")],
                    Category::GpuAssembly,
                )
            }
            (_, Placement::Ssd) => {
                // SGD-RR against storage: one random read per row (the
                // pathological case motivating Section 4.3)
                let per_row = spec.ssd_req_overhead + w.row_bytes as f64 / spec.ssd_rand_bw;
                let read_s = w.batch_size as f64 * per_row;
                let r = sim.task(ssd, read_s, &buffer_dep, Category::StorageRead);
                sim.task(dma, spec.h2d_time(batch_bytes), &[r], Category::Transfer)
            }
        };

        let launch = sim.task(host, spec.host_op_overhead, &[], Category::Launch);
        let c = sim.task(gpu, compute_s, &[ready, launch], Category::Compute);
        computes.push(c);
    }

    let schedule = sim.run();
    EpochReport {
        epoch_time: schedule.makespan(),
        num_batches,
        schedule,
    }
}

/// Simulates one MP-GNN training epoch under the given training system.
///
/// # Panics
///
/// Panics if the workload has a zero batch size or the spec fails
/// validation.
pub fn mp_epoch(spec: &HardwareSpec, w: &MpWorkload, system: MpSystem) -> EpochReport {
    spec.validate().expect("invalid hardware spec");
    assert!(w.batch_size > 0, "batch size must be positive");
    let num_batches = w.num_batches().max(1);
    let feature_bytes = w.input_nodes_per_batch * w.feature_row_bytes;
    let compute_s = spec.compute_time(w.flops_per_batch);
    // Sampling walks every candidate edge of the fanout frontier; the
    // sampled edge count is the measured proxy.
    let cpu_sample_s = w.edges_per_batch as f64 * spec.cpu_sample_per_edge;

    let mut sim = Sim::new();
    let host = sim.resource("host");
    let dma = sim.resource("dma");
    let gpu_copy = sim.resource("gpu-copy");
    let gpu = sim.resource("gpu-compute");
    let ssd = sim.resource("ssd");

    let mut computes: Vec<TaskId> = Vec::with_capacity(num_batches);
    for i in 0..num_batches {
        let prev: Vec<TaskId> = if i >= 1 {
            vec![computes[i - 1]]
        } else {
            vec![]
        };
        let double: Vec<TaskId> = if i >= 2 {
            vec![computes[i - 2]]
        } else {
            vec![]
        };
        let ready = match system {
            MpSystem::VanillaCpu => {
                // CPU sampling → host feature extraction → sync H2D
                let s = sim.task(host, cpu_sample_s, &prev, Category::Sampling);
                let gather_s = feature_bytes as f64 / spec.host_gather_bw + spec.host_op_overhead;
                let g = sim.task(host, gather_s, &[s], Category::HostGather);
                let xfer_bytes = feature_bytes + w.edges_per_batch * 8;
                sim.task(dma, spec.h2d_time(xfer_bytes), &[g], Category::Transfer)
            }
            MpSystem::Uva => {
                // GPU sampling over UVA + zero-copy feature reads at
                // degraded PCIe efficiency; pipelined (DGL prefetching)
                let s = sim.task(
                    gpu_copy,
                    cpu_sample_s / spec.gpu_sample_speedup,
                    &double,
                    Category::Sampling,
                );
                let read_s = feature_bytes as f64 / (spec.pcie_bw * spec.uva_efficiency);
                sim.task(gpu_copy, read_s, &[s], Category::Transfer)
            }
            MpSystem::Preload => {
                // everything on device: GPU sampling + HBM gathers
                let s = sim.task(
                    gpu_copy,
                    cpu_sample_s / spec.gpu_sample_speedup,
                    &double,
                    Category::Sampling,
                );
                let gather_s = feature_bytes as f64 / spec.gpu_gather_bw;
                sim.task(gpu_copy, gather_s, &[s], Category::GpuAssembly)
            }
            MpSystem::Storage { cache_hit_rate } => {
                // CPU sampling; misses hit SSD with random reads
                let s = sim.task(host, cpu_sample_s, &prev, Category::Sampling);
                let miss_bytes = (feature_bytes as f64 * (1.0 - cache_hit_rate)) as u64;
                let reads = (miss_bytes / w.feature_row_bytes.max(1)).max(1);
                let read_s =
                    reads as f64 * spec.ssd_req_overhead + miss_bytes as f64 / spec.ssd_rand_bw;
                let r = sim.task(ssd, read_s, &[s], Category::StorageRead);
                let hit_bytes = feature_bytes - miss_bytes;
                let gather_s = hit_bytes as f64 / spec.host_gather_bw + spec.host_op_overhead;
                let g = sim.task(host, gather_s, &[r], Category::HostGather);
                sim.task(dma, spec.h2d_time(feature_bytes), &[g], Category::Transfer)
            }
        };
        // Framework overhead: block construction + per-layer launches on
        // the host thread, serialized across iterations (the Python loop).
        let overhead = sim.task(host, spec.mp_batch_overhead, &[], Category::Launch);
        let c = sim.task(gpu, compute_s, &[ready, overhead], Category::Compute);
        computes.push(c);
    }

    let schedule = sim.run();
    EpochReport {
        epoch_time: schedule.makespan(),
        num_batches,
        schedule,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workload() -> PpWorkload {
        PpWorkload {
            num_train: 160_000,
            batch_size: 8000,
            row_bytes: 4 * 128 * 4, // 4 hop matrices of F=128
            flops_per_example: 2_000_000,
            chunk_size: 8000,
            param_bytes: 4 << 20,
        }
    }

    #[test]
    fn ablation_ordering_matches_figure9() {
        // baseline > fused > double-buffer ≥ chunk-reshuffle on host data
        let spec = HardwareSpec::a6000_server();
        let w = workload();
        let t = |g| pp_epoch(&spec, &w, g, Placement::Host).epoch_time;
        let base = t(LoaderGen::Baseline);
        let fused = t(LoaderGen::FusedGather);
        let dbuf = t(LoaderGen::DoubleBuffer);
        let chunk = t(LoaderGen::ChunkReshuffle);
        assert!(
            base > 2.0 * fused,
            "fused assembly should give ≥2x: {base} vs {fused}"
        );
        assert!(
            fused > dbuf,
            "double buffering should help: {fused} vs {dbuf}"
        );
        assert!(
            dbuf > chunk,
            "chunk reshuffling should help: {dbuf} vs {chunk}"
        );
        assert!(base > 10.0 * chunk, "stacked speedup should be ≥10x");
    }

    #[test]
    fn baseline_is_dominated_by_data_loading() {
        // Figure 5: ≥ 60 % of vanilla PP-GNN time is loading.
        let spec = HardwareSpec::a6000_server();
        let rep = pp_epoch(&spec, &workload(), LoaderGen::Baseline, Placement::Host);
        assert!(
            rep.data_loading_fraction() > 0.6,
            "loading fraction {}",
            rep.data_loading_fraction()
        );
    }

    #[test]
    fn gpu_placement_is_fastest() {
        let spec = HardwareSpec::a6000_server();
        let w = workload();
        let gpu = pp_epoch(&spec, &w, LoaderGen::DoubleBuffer, Placement::Gpu).epoch_time;
        let host = pp_epoch(&spec, &w, LoaderGen::DoubleBuffer, Placement::Host).epoch_time;
        assert!(gpu <= host);
    }

    #[test]
    fn chunked_storage_beats_random_storage_by_far() {
        let spec = HardwareSpec::a6000_server();
        let w = workload();
        let cr = pp_epoch(&spec, &w, LoaderGen::ChunkReshuffle, Placement::Ssd).epoch_time;
        let rr = pp_epoch(&spec, &w, LoaderGen::DoubleBuffer, Placement::Ssd).epoch_time;
        assert!(
            rr > 5.0 * cr,
            "random storage reads should be ≫ chunked: {rr} vs {cr}"
        );
    }

    #[test]
    fn ssd_chunked_is_close_to_host_chunked() {
        // the headline Section 4.3 result: storage CR ≈ host-memory speeds
        let spec = HardwareSpec::a6000_server();
        let w = workload();
        let host = pp_epoch(&spec, &w, LoaderGen::ChunkReshuffle, Placement::Host).epoch_time;
        let ssd = pp_epoch(&spec, &w, LoaderGen::ChunkReshuffle, Placement::Ssd).epoch_time;
        assert!(ssd < 4.0 * host, "ssd {ssd} vs host {host}");
    }

    #[test]
    fn mp_systems_order_correctly() {
        // Figure 4: vanilla ≫ UVA > preload
        let spec = HardwareSpec::a6000_server();
        let w = MpWorkload {
            num_train: 160_000,
            batch_size: 8000,
            feature_row_bytes: 128 * 4,
            input_nodes_per_batch: 600_000,
            edges_per_batch: 2_000_000,
            flops_per_batch: 5_000_000_000,
            param_bytes: 4 << 20,
        };
        let v = mp_epoch(&spec, &w, MpSystem::VanillaCpu).epoch_time;
        let u = mp_epoch(&spec, &w, MpSystem::Uva).epoch_time;
        let p = mp_epoch(&spec, &w, MpSystem::Preload).epoch_time;
        assert!(v > u, "vanilla {v} vs uva {u}");
        assert!(u > p, "uva {u} vs preload {p}");
    }

    #[test]
    fn optimized_pp_beats_optimized_mp() {
        // the paper's headline: optimized PP-GNNs beat the best MP systems
        // because they move ~20x fewer bytes and skip sampling
        let spec = HardwareSpec::a6000_server();
        let pp = pp_epoch(
            &spec,
            &workload(),
            LoaderGen::ChunkReshuffle,
            Placement::Host,
        );
        let w = MpWorkload {
            num_train: 160_000,
            batch_size: 8000,
            feature_row_bytes: 128 * 4,
            input_nodes_per_batch: 600_000, // 75x expansion, as measured
            edges_per_batch: 2_000_000,
            flops_per_batch: 5_000_000_000,
            param_bytes: 4 << 20,
        };
        let mp = mp_epoch(&spec, &w, MpSystem::Preload);
        assert!(
            pp.epoch_time * 3.0 < mp.epoch_time,
            "pp {} vs mp {}",
            pp.epoch_time,
            mp.epoch_time
        );
    }

    #[test]
    fn throughput_is_reciprocal_of_epoch_time() {
        let spec = HardwareSpec::a6000_server();
        let rep = pp_epoch(&spec, &workload(), LoaderGen::DoubleBuffer, Placement::Gpu);
        assert!((rep.throughput() * rep.epoch_time - 1.0).abs() < 1e-9);
    }
}
