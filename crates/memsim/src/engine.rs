//! Deterministic discrete-event engine with CUDA-stream semantics.
//!
//! Resources are **in-order queues**: tasks issued to the same resource
//! execute in issue order, like kernels on a CUDA stream or requests on a
//! DMA engine. Cross-resource ordering is expressed with dependency edges,
//! which must point to already-issued tasks (builders issue in topological
//! order, so this is natural). Under these two rules a single forward pass
//! computes exact start/finish times.

use std::collections::BTreeMap;

/// What a task models — used for time breakdowns (Figure 5) and Gantt
/// rendering (Figure 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[non_exhaustive]
pub enum Category {
    /// Host-side batch assembly (row gathers into a staging buffer).
    HostGather,
    /// Fixed host-side operator/kernel-launch overhead.
    Launch,
    /// Host↔device DMA transfer.
    Transfer,
    /// GPU-side batch assembly from chunks.
    GpuAssembly,
    /// Model forward+backward+optimizer compute.
    Compute,
    /// Storage (SSD) read.
    StorageRead,
    /// Graph sampling (MP-GNN only).
    Sampling,
    /// Gradient all-reduce (multi-GPU).
    AllReduce,
    /// Anything else.
    Other,
}

impl Category {
    /// `true` for categories the paper counts as "data loading".
    pub fn is_data_loading(&self) -> bool {
        matches!(
            self,
            Category::HostGather
                | Category::Launch
                | Category::Transfer
                | Category::GpuAssembly
                | Category::StorageRead
        )
    }

    /// Short label for Gantt rows and tables.
    pub fn label(&self) -> &'static str {
        match self {
            Category::HostGather => "host-gather",
            Category::Launch => "launch",
            Category::Transfer => "transfer",
            Category::GpuAssembly => "gpu-assembly",
            Category::Compute => "compute",
            Category::StorageRead => "storage-read",
            Category::Sampling => "sampling",
            Category::AllReduce => "all-reduce",
            Category::Other => "other",
        }
    }
}

/// Identifier of an issued task (index into the simulation's task list).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TaskId(pub(crate) usize);

/// Identifier of a resource (stream/queue).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ResourceId(pub(crate) usize);

#[derive(Debug, Clone)]
struct Task {
    resource: ResourceId,
    duration: f64,
    deps: Vec<TaskId>,
    category: Category,
}

/// A simulation under construction: declare resources, issue tasks, run.
///
/// # Example
///
/// ```
/// use ppgnn_memsim::engine::{Category, Sim};
///
/// let mut sim = Sim::new();
/// let host = sim.resource("host");
/// let gpu = sim.resource("gpu");
/// let load = sim.task(host, 2.0, &[], Category::HostGather);
/// let compute = sim.task(gpu, 1.0, &[load], Category::Compute);
/// let schedule = sim.run();
/// assert_eq!(schedule.finish(compute), 3.0);
/// assert_eq!(schedule.makespan(), 3.0);
/// ```
#[derive(Debug, Default)]
pub struct Sim {
    resource_names: Vec<String>,
    tasks: Vec<Task>,
}

impl Sim {
    /// Creates an empty simulation.
    pub fn new() -> Self {
        Sim::default()
    }

    /// Declares a resource (an in-order execution queue).
    pub fn resource(&mut self, name: &str) -> ResourceId {
        self.resource_names.push(name.to_string());
        ResourceId(self.resource_names.len() - 1)
    }

    /// Issues a task on `resource` lasting `duration` seconds, starting no
    /// earlier than all `deps` have finished.
    ///
    /// # Panics
    ///
    /// Panics if `resource` is undeclared, a dependency is not yet issued
    /// (forward edges are forbidden), or `duration` is negative/NaN.
    pub fn task(
        &mut self,
        resource: ResourceId,
        duration: f64,
        deps: &[TaskId],
        category: Category,
    ) -> TaskId {
        assert!(
            resource.0 < self.resource_names.len(),
            "undeclared resource"
        );
        assert!(
            duration >= 0.0 && duration.is_finite(),
            "bad duration {duration}"
        );
        let id = TaskId(self.tasks.len());
        for d in deps {
            assert!(d.0 < id.0, "dependency on not-yet-issued task");
        }
        self.tasks.push(Task {
            resource,
            duration,
            deps: deps.to_vec(),
            category,
        });
        id
    }

    /// Number of issued tasks.
    pub fn num_tasks(&self) -> usize {
        self.tasks.len()
    }

    /// Executes the simulation, producing exact task times.
    pub fn run(self) -> Schedule {
        let mut resource_free = vec![0.0f64; self.resource_names.len()];
        let mut start = Vec::with_capacity(self.tasks.len());
        let mut finish: Vec<f64> = Vec::with_capacity(self.tasks.len());
        let mut busy: BTreeMap<Category, f64> = BTreeMap::new();
        let mut resource_busy = vec![0.0f64; self.resource_names.len()];
        for t in &self.tasks {
            let dep_ready = t.deps.iter().map(|d| finish[d.0]).fold(0.0f64, f64::max);
            let s = dep_ready.max(resource_free[t.resource.0]);
            let f = s + t.duration;
            resource_free[t.resource.0] = f;
            *busy.entry(t.category).or_insert(0.0) += t.duration;
            resource_busy[t.resource.0] += t.duration;
            start.push(s);
            finish.push(f);
        }
        Schedule {
            resource_names: self.resource_names,
            tasks: self
                .tasks
                .iter()
                .map(|t| (t.resource, t.category))
                .collect(),
            start,
            finish,
            busy,
            resource_busy,
        }
    }
}

/// The result of running a [`Sim`]: exact start/finish times per task.
#[derive(Debug, Clone)]
pub struct Schedule {
    resource_names: Vec<String>,
    tasks: Vec<(ResourceId, Category)>,
    start: Vec<f64>,
    finish: Vec<f64>,
    busy: BTreeMap<Category, f64>,
    resource_busy: Vec<f64>,
}

impl Schedule {
    /// Start time of `task`.
    pub fn start(&self, task: TaskId) -> f64 {
        self.start[task.0]
    }

    /// Finish time of `task`.
    pub fn finish(&self, task: TaskId) -> f64 {
        self.finish[task.0]
    }

    /// Total simulated time (latest finish; `0.0` for an empty schedule).
    pub fn makespan(&self) -> f64 {
        self.finish.iter().copied().fold(0.0, f64::max)
    }

    /// Busy seconds per category (sum of task durations).
    pub fn busy_by_category(&self) -> &BTreeMap<Category, f64> {
        &self.busy
    }

    /// Busy seconds of one resource.
    pub fn resource_busy(&self, r: ResourceId) -> f64 {
        self.resource_busy[r.0]
    }

    /// Resource names in declaration order.
    pub fn resource_names(&self) -> &[String] {
        &self.resource_names
    }

    /// Iterates `(resource, category, start, finish)` for every task.
    pub fn iter_tasks(&self) -> impl Iterator<Item = (ResourceId, Category, f64, f64)> + '_ {
        self.tasks
            .iter()
            .zip(self.start.iter().zip(&self.finish))
            .map(|(&(r, c), (&s, &f))| (r, c, s, f))
    }

    /// Fraction of busy time spent in data-loading categories — the
    /// Figure 5 pie-chart quantity.
    pub fn data_loading_fraction(&self) -> f64 {
        let total: f64 = self.busy.values().sum();
        if total == 0.0 {
            return 0.0;
        }
        let loading: f64 = self
            .busy
            .iter()
            .filter(|(c, _)| c.is_data_loading())
            .map(|(_, v)| v)
            .sum();
        loading / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_tasks_on_one_resource_accumulate() {
        let mut sim = Sim::new();
        let r = sim.resource("r");
        let a = sim.task(r, 1.0, &[], Category::Other);
        let b = sim.task(r, 2.0, &[], Category::Other);
        let s = sim.run();
        assert_eq!(s.finish(a), 1.0);
        assert_eq!(s.start(b), 1.0); // FIFO even without deps
        assert_eq!(s.makespan(), 3.0);
    }

    #[test]
    fn independent_resources_overlap() {
        let mut sim = Sim::new();
        let r1 = sim.resource("a");
        let r2 = sim.resource("b");
        sim.task(r1, 5.0, &[], Category::Other);
        sim.task(r2, 3.0, &[], Category::Other);
        assert_eq!(sim.run().makespan(), 5.0);
    }

    #[test]
    fn dependencies_delay_start() {
        let mut sim = Sim::new();
        let r1 = sim.resource("a");
        let r2 = sim.resource("b");
        let load = sim.task(r1, 2.0, &[], Category::Transfer);
        let compute = sim.task(r2, 1.0, &[load], Category::Compute);
        let s = sim.run();
        assert_eq!(s.start(compute), 2.0);
        assert_eq!(s.makespan(), 3.0);
    }

    #[test]
    fn double_buffer_pattern_overlaps_load_and_compute() {
        // load[i] (1s) feeds compute[i] (1s); with 2 buffers,
        // load[i] waits on compute[i-2]. Total for n batches ≈ n + 1.
        let n = 10;
        let mut sim = Sim::new();
        let dma = sim.resource("dma");
        let gpu = sim.resource("gpu");
        let mut computes: Vec<TaskId> = Vec::new();
        for i in 0..n {
            let deps: Vec<TaskId> = if i >= 2 {
                vec![computes[i - 2]]
            } else {
                vec![]
            };
            let load = sim.task(dma, 1.0, &deps, Category::Transfer);
            let c = sim.task(gpu, 1.0, &[load], Category::Compute);
            computes.push(c);
        }
        let s = sim.run();
        assert!((s.makespan() - (n as f64 + 1.0)).abs() < 1e-9);
    }

    #[test]
    fn single_buffer_serializes() {
        // Same as above but load[i] waits on compute[i-1]: total = 2n.
        let n = 10;
        let mut sim = Sim::new();
        let dma = sim.resource("dma");
        let gpu = sim.resource("gpu");
        let mut computes: Vec<TaskId> = Vec::new();
        for i in 0..n {
            let deps: Vec<TaskId> = if i >= 1 {
                vec![computes[i - 1]]
            } else {
                vec![]
            };
            let load = sim.task(dma, 1.0, &deps, Category::Transfer);
            let c = sim.task(gpu, 1.0, &[load], Category::Compute);
            computes.push(c);
        }
        assert!((sim.run().makespan() - 2.0 * n as f64).abs() < 1e-9);
    }

    #[test]
    fn makespan_bounds_hold() {
        // makespan ≥ busy time of every resource; ≥ any chain of deps
        let mut sim = Sim::new();
        let r1 = sim.resource("a");
        let r2 = sim.resource("b");
        let mut prev = None;
        for i in 0..5 {
            let r = if i % 2 == 0 { r1 } else { r2 };
            let deps: Vec<TaskId> = prev.into_iter().collect();
            prev = Some(sim.task(r, 1.5, &deps, Category::Other));
        }
        let s = sim.run();
        assert!(s.makespan() >= s.resource_busy(ResourceId(0)) - 1e-12);
        assert!(s.makespan() >= s.resource_busy(ResourceId(1)) - 1e-12);
        assert!((s.makespan() - 7.5).abs() < 1e-9); // full chain
    }

    #[test]
    fn data_loading_fraction_is_computed() {
        let mut sim = Sim::new();
        let r = sim.resource("r");
        sim.task(r, 3.0, &[], Category::HostGather);
        sim.task(r, 1.0, &[], Category::Compute);
        let s = sim.run();
        assert!((s.data_loading_fraction() - 0.75).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "not-yet-issued")]
    fn forward_dependency_panics() {
        let mut sim = Sim::new();
        let r = sim.resource("r");
        sim.task(r, 1.0, &[TaskId(5)], Category::Other);
    }

    #[test]
    fn empty_schedule_has_zero_makespan() {
        assert_eq!(Sim::new().run().makespan(), 0.0);
    }
}
