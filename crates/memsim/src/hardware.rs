//! Hardware parameter sets.

use serde::{Deserialize, Serialize};

/// Bandwidths, overheads, and capacities of a simulated training server.
///
/// Defaults ([`HardwareSpec::a6000_server`]) approximate the paper's
/// testbed (Appendix C): 2× Xeon Gold 6248R, 380 GB DRAM, RTX A6000 GPUs
/// (48 GB, ~768 GB/s HBM), PCIe 4.0 ×16 links, and Samsung PM9A3 NVMe SSDs.
/// Values are effective (achievable) rates, not datasheet peaks.
///
/// All fields are public: experiments shrink capacities to trigger the
/// placement policy at laptop scale, and the ablation harness perturbs
/// overheads to show which mechanism each optimization removes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HardwareSpec {
    /// GPUs available.
    pub num_gpus: usize,
    /// Usable GPU memory per device, bytes.
    pub gpu_mem_bytes: u64,
    /// Usable host memory, bytes.
    pub host_mem_bytes: u64,

    /// Effective GPU HBM bandwidth (sequential), bytes/s.
    pub gpu_mem_bw: f64,
    /// Effective GPU gather/scatter bandwidth (batch assembly on device),
    /// bytes/s.
    pub gpu_gather_bw: f64,
    /// Effective GPU f32 throughput, FLOP/s (with utilization discount).
    pub gpu_flops: f64,

    /// Host DRAM bandwidth for *strided row gathers* (the batch-assembly
    /// pattern), bytes/s. Far below streaming bandwidth.
    pub host_gather_bw: f64,
    /// Host DRAM streaming copy bandwidth, bytes/s.
    pub host_memcpy_bw: f64,
    /// Aggregate host-memory bandwidth available to CPU-side loader
    /// processes (gathers scale with workers up to this), bytes/s.
    pub host_mem_total_bw: f64,
    /// Aggregate host-memory bandwidth reachable by all GPUs' DMA engines
    /// for bulk reads (NUMA-interleaved, far below the CPU-side aggregate) —
    /// the multi-GPU chunk-reshuffle bottleneck of Table 4, bytes/s.
    pub host_dma_total_bw: f64,

    /// Effective host→device PCIe bandwidth per GPU, bytes/s.
    pub pcie_bw: f64,
    /// Fixed cost per DMA request (descriptor setup + doorbell), seconds.
    pub dma_latency: f64,
    /// Fixed cost of one host-side operator/kernel launch, seconds.
    pub host_op_overhead: f64,
    /// Per-sample framework overhead of the baseline loader
    /// (`__getitem__` + collate per row, amortized over loader workers),
    /// seconds — paid `O(batch)` times per batch (Section 4.1).
    pub per_sample_overhead: f64,
    /// Efficiency factor for fine-grained UVA/zero-copy reads over PCIe
    /// (fraction of `pcie_bw` achieved by 4–256 B random accesses).
    pub uva_efficiency: f64,

    /// SSD sequential read bandwidth, bytes/s.
    pub ssd_seq_bw: f64,
    /// SSD random-read bandwidth for ~4 KB requests, bytes/s.
    pub ssd_rand_bw: f64,
    /// Fixed cost per storage request via GPUDirect Storage, seconds.
    pub ssd_req_overhead: f64,

    /// CPU sampling cost per traversed edge, seconds (single worker,
    /// amortized over the DGL sampler thread pool).
    pub cpu_sample_per_edge: f64,
    /// GPU-sampling speedup over the CPU sampler (DGL ≥ 0.8 UVA sampling).
    pub gpu_sample_speedup: f64,
    /// Per-iteration framework overhead of the MP-GNN training loop
    /// (block construction, per-layer kernel launches, Python dispatch) —
    /// the fixed cost DGL pays per minibatch regardless of batch size.
    pub mp_batch_overhead: f64,

    /// Per-batch gradient all-reduce latency floor, seconds.
    pub allreduce_latency: f64,
}

impl HardwareSpec {
    /// The paper's evaluation server (Appendix C), effective rates.
    pub fn a6000_server() -> Self {
        HardwareSpec {
            num_gpus: 4,
            gpu_mem_bytes: 48 << 30,
            host_mem_bytes: 380 << 30,
            gpu_mem_bw: 600e9,
            gpu_gather_bw: 350e9,
            gpu_flops: 30e12,
            host_gather_bw: 6e9,
            host_memcpy_bw: 20e9,
            host_mem_total_bw: 70e9,
            host_dma_total_bw: 26e9,
            pcie_bw: 22e9,
            dma_latency: 12e-6,
            host_op_overhead: 9e-6,
            per_sample_overhead: 3e-6,
            uva_efficiency: 0.35,
            ssd_seq_bw: 6e9,
            ssd_rand_bw: 1.8e9,
            ssd_req_overhead: 25e-6,
            cpu_sample_per_edge: 45e-9,
            gpu_sample_speedup: 8.0,
            mp_batch_overhead: 2e-3,
            allreduce_latency: 60e-6,
        }
    }

    /// A deliberately tiny machine for tests: 64 MB GPU, 512 MB host.
    /// Triggers every placement branch with megabyte-scale datasets.
    pub fn tiny() -> Self {
        HardwareSpec {
            num_gpus: 2,
            gpu_mem_bytes: 64 << 20,
            host_mem_bytes: 512 << 20,
            ..Self::a6000_server()
        }
    }

    /// Seconds to move `bytes` host→device in one DMA request.
    pub fn h2d_time(&self, bytes: u64) -> f64 {
        self.dma_latency + bytes as f64 / self.pcie_bw
    }

    /// Seconds of GPU compute for `flops` floating-point operations.
    pub fn compute_time(&self, flops: u64) -> f64 {
        flops as f64 / self.gpu_flops
    }

    /// Validates that rates are positive and capacities non-zero.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        let positive = [
            ("gpu_mem_bw", self.gpu_mem_bw),
            ("gpu_gather_bw", self.gpu_gather_bw),
            ("gpu_flops", self.gpu_flops),
            ("host_gather_bw", self.host_gather_bw),
            ("host_memcpy_bw", self.host_memcpy_bw),
            ("host_mem_total_bw", self.host_mem_total_bw),
            ("host_dma_total_bw", self.host_dma_total_bw),
            ("pcie_bw", self.pcie_bw),
            ("ssd_seq_bw", self.ssd_seq_bw),
            ("ssd_rand_bw", self.ssd_rand_bw),
        ];
        for (name, v) in positive {
            if v <= 0.0 || !v.is_finite() {
                return Err(format!("{name} must be positive and finite, got {v}"));
            }
        }
        if self.num_gpus == 0 {
            return Err("num_gpus must be at least 1".into());
        }
        if self.gpu_mem_bytes == 0 || self.host_mem_bytes == 0 {
            return Err("memory capacities must be non-zero".into());
        }
        if !(0.0..=1.0).contains(&self.uva_efficiency) {
            return Err(format!(
                "uva_efficiency must be in [0,1], got {}",
                self.uva_efficiency
            ));
        }
        Ok(())
    }
}

impl Default for HardwareSpec {
    fn default() -> Self {
        Self::a6000_server()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        assert!(HardwareSpec::a6000_server().validate().is_ok());
        assert!(HardwareSpec::tiny().validate().is_ok());
    }

    #[test]
    fn bandwidth_hierarchy_is_ordered() {
        // The entire paper rests on this ordering.
        let h = HardwareSpec::a6000_server();
        assert!(h.gpu_mem_bw > h.host_memcpy_bw);
        assert!(h.host_memcpy_bw > h.host_gather_bw);
        assert!(h.pcie_bw > h.ssd_seq_bw);
        assert!(h.ssd_seq_bw > h.ssd_rand_bw);
        assert!(h.gpu_gather_bw > h.host_gather_bw * 10.0);
    }

    #[test]
    fn h2d_time_includes_latency() {
        let h = HardwareSpec::a6000_server();
        assert!(h.h2d_time(0) >= h.dma_latency);
        let t1 = h.h2d_time(1 << 20);
        let t2 = h.h2d_time(2 << 20);
        assert!(t2 > t1);
    }

    #[test]
    fn hardware_spec_serde_round_trip_is_bit_exact() {
        for spec in [HardwareSpec::a6000_server(), HardwareSpec::tiny()] {
            let text = serde::to_string(&spec);
            let back: HardwareSpec = serde::from_str(&text).expect("spec parses back");
            assert_eq!(back, spec);
            assert_eq!(back.gpu_mem_bw.to_bits(), spec.gpu_mem_bw.to_bits());
            assert_eq!(back.dma_latency.to_bits(), spec.dma_latency.to_bits());
        }
    }

    #[test]
    fn invalid_specs_are_rejected() {
        let mut h = HardwareSpec::a6000_server();
        h.pcie_bw = 0.0;
        assert!(h.validate().is_err());
        let mut h = HardwareSpec::a6000_server();
        h.num_gpus = 0;
        assert!(h.validate().is_err());
        let mut h = HardwareSpec::a6000_server();
        h.uva_efficiency = 1.5;
        assert!(h.validate().is_err());
    }
}
