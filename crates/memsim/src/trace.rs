//! ASCII Gantt rendering of simulated schedules (the Figure 6 analog).

use crate::engine::{Category, Schedule};

/// Renders `schedule` as an ASCII Gantt chart, one row per resource,
/// `width` characters across the makespan.
///
/// Each task paints its span with the first letter of its category label;
/// overlapping paints (FIFO queues never overlap on one resource) are
/// impossible by construction. Idle time renders as `·`.
///
/// # Example
///
/// ```
/// use ppgnn_memsim::engine::{Category, Sim};
/// use ppgnn_memsim::trace::gantt;
///
/// let mut sim = Sim::new();
/// let host = sim.resource("host");
/// sim.task(host, 1.0, &[], Category::HostGather);
/// let chart = gantt(&sim.run(), 20);
/// assert!(chart.contains("host"));
/// ```
pub fn gantt(schedule: &Schedule, width: usize) -> String {
    let makespan = schedule.makespan();
    let names = schedule.resource_names();
    let label_w = names.iter().map(|n| n.len()).max().unwrap_or(0).max(4);
    if makespan <= 0.0 {
        return String::from("(empty schedule)\n");
    }
    let mut rows: Vec<Vec<char>> = vec![vec!['·'; width]; names.len()];
    for (r, cat, s, f) in schedule.iter_tasks() {
        let a = ((s / makespan) * width as f64).floor() as usize;
        let b = (((f / makespan) * width as f64).ceil() as usize).min(width);
        let ch = glyph(cat);
        for cell in rows[r.0][a..b.max(a + 1).min(width)].iter_mut() {
            *cell = ch;
        }
    }
    let mut out = String::new();
    for (name, row) in names.iter().zip(rows) {
        out.push_str(&format!("{name:label_w$} |"));
        out.extend(row);
        out.push_str("|\n");
    }
    out.push_str(&format!(
        "{:label_w$} 0 {} {makespan:.4}s\n",
        "",
        "-".repeat(width.saturating_sub(12)),
    ));
    out.push_str(&legend());
    out
}

fn glyph(cat: Category) -> char {
    match cat {
        Category::HostGather => 'G',
        Category::Launch => 'l',
        Category::Transfer => 'T',
        Category::GpuAssembly => 'A',
        Category::Compute => 'C',
        Category::StorageRead => 'S',
        Category::Sampling => 's',
        Category::AllReduce => 'R',
        Category::Other => '?',
    }
}

fn legend() -> String {
    "legend: G=host-gather T=transfer A=gpu-assembly C=compute S=storage-read s=sampling l=launch R=all-reduce ·=idle\n"
        .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Sim;

    #[test]
    fn chart_contains_all_resources_and_glyphs() {
        let mut sim = Sim::new();
        let host = sim.resource("host");
        let gpu = sim.resource("gpu");
        let a = sim.task(host, 1.0, &[], Category::HostGather);
        sim.task(gpu, 1.0, &[a], Category::Compute);
        let chart = gantt(&sim.run(), 40);
        assert!(chart.contains("host"));
        assert!(chart.contains("gpu"));
        assert!(chart.contains('G'));
        assert!(chart.contains('C'));
        assert!(chart.contains("legend"));
    }

    #[test]
    fn sequential_tasks_paint_disjoint_spans() {
        let mut sim = Sim::new();
        let r = sim.resource("r");
        sim.task(r, 1.0, &[], Category::HostGather);
        sim.task(r, 1.0, &[], Category::Compute);
        let chart = gantt(&sim.run(), 20);
        let row = chart.lines().next().expect("one row");
        let gs = row.matches('G').count();
        let cs = row.matches('C').count();
        assert!(gs >= 8 && cs >= 8, "half-and-half expected: {row}");
    }

    #[test]
    fn empty_schedule_renders_placeholder() {
        let chart = gantt(&Sim::new().run(), 10);
        assert!(chart.contains("empty"));
    }
}
