//! Discrete-event simulator of the GNN training memory/compute hierarchy.
//!
//! The paper's throughput results are *structural*: they follow from how
//! data-loading work (host-side gathers, kernel launches, DMA transfers,
//! storage reads) overlaps — or fails to overlap — with GPU compute. This
//! crate models exactly those mechanisms:
//!
//! * [`HardwareSpec`] — bandwidths, per-operation overheads, and capacities
//!   of an A6000-class server (the paper's testbed, Appendix C), fully
//!   configurable so placement decisions can be exercised at any scale;
//! * [`engine`] — a deterministic discrete-event engine where resources are
//!   in-order queues (CUDA-stream semantics) and tasks carry dependency
//!   edges; double buffering falls out of `transfer[i+2] → compute[i]`
//!   dependencies rather than special cases;
//! * [`pipelines`] — schedule builders for every data-loading generation of
//!   Section 4 (baseline per-sample assembly, fused batch assembly,
//!   double-buffer prefetching, chunk reshuffling, direct-storage access)
//!   and for the MP-GNN training systems compared in the evaluation
//!   (CPU-sampled vanilla, UVA, GPU preload);
//! * [`multigpu`] — synchronous data-parallel scaling with shared
//!   host-link/storage contention and per-batch gradient all-reduce.
//!
//! Workload parameters (batch counts, byte volumes, sampled-subgraph sizes,
//! FLOPs) come from the *functional* plane — they are measured from the real
//! loaders, samplers and models, then replayed here at paper scale.

#![deny(missing_docs)]

pub mod engine;
pub mod hardware;
pub mod multigpu;
pub mod pipelines;
pub mod trace;

pub use engine::{Category, Schedule, Sim, TaskId};
pub use hardware::HardwareSpec;
pub use multigpu::multi_gpu_epoch;
pub use pipelines::{
    mp_epoch, pp_epoch, EpochReport, LoaderGen, MpSystem, MpWorkload, Placement, PpWorkload,
};
