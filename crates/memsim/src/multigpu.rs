//! Synchronous data-parallel multi-GPU scaling.
//!
//! Models the paper's Tables 3–4 scaling study: each GPU trains on
//! `1/num_gpus` of the batches, with a per-batch gradient all-reduce and —
//! the interesting part — *shared* host-memory/storage bandwidth. For
//! host-resident chunk reshuffling, adding GPUs does not add host DRAM
//! bandwidth, so scaling saturates (the Table 4 observation: CR delivers
//! only ~1.3× on 4 GPUs, while SGD-RR from GPU memory scales near-linearly).

use crate::engine::Category;
use crate::pipelines::{pp_epoch, EpochReport, LoaderGen, Placement, PpWorkload};
use crate::HardwareSpec;

/// Simulates a data-parallel PP-GNN epoch on `num_gpus` GPUs.
///
/// Returns the per-epoch wall-clock report of the slowest replica with
/// all-reduce time folded in. Contention model:
///
/// * host placement — each GPU's DMA bandwidth is
///   `min(pcie_bw, host_dma_total_bw / num_gpus)` while CPU-side gathers
///   are capped by `host_mem_total_bw / num_gpus`;
/// * SSD placement — each GPU's effective read bandwidth is
///   `ssd_seq_bw / num_gpus` (single drive shared);
/// * GPU placement — no shared-path contention (data pre-partitioned,
///   locality-aware fetch as in Section 5).
///
/// # Panics
///
/// Panics if `num_gpus == 0` or exceeds `spec.num_gpus`.
pub fn multi_gpu_epoch(
    spec: &HardwareSpec,
    w: &PpWorkload,
    gen: LoaderGen,
    placement: Placement,
    num_gpus: usize,
) -> EpochReport {
    assert!(num_gpus >= 1, "need at least one GPU");
    assert!(
        num_gpus <= spec.num_gpus,
        "requested {num_gpus} GPUs but the machine has {}",
        spec.num_gpus
    );

    // Contention-adjusted per-GPU spec.
    let mut per_gpu = *spec;
    match placement {
        Placement::Host => {
            // Bulk DMA reads share the (NUMA-limited) host DMA ceiling;
            // CPU-side gathers run in per-GPU loader processes and only
            // contend once they exhaust the CPU-side aggregate.
            per_gpu.pcie_bw = spec.pcie_bw.min(spec.host_dma_total_bw / num_gpus as f64);
            per_gpu.host_gather_bw = spec
                .host_gather_bw
                .min(spec.host_mem_total_bw / num_gpus as f64);
        }
        Placement::Ssd => {
            per_gpu.ssd_seq_bw = spec.ssd_seq_bw / num_gpus as f64;
            per_gpu.ssd_rand_bw = spec.ssd_rand_bw / num_gpus as f64;
        }
        Placement::Gpu => {}
    }

    // Each replica sees 1/g of the training set.
    let mut shard = *w;
    shard.num_train = (w.num_train / num_gpus).max(w.batch_size);

    let mut report = pp_epoch(&per_gpu, &shard, gen, placement);

    // Per-batch ring all-reduce on the shared interconnect: each GPU sends
    // and receives 2(g-1)/g of the gradient bytes.
    if num_gpus > 1 {
        let volume = 2.0 * (num_gpus as f64 - 1.0) / num_gpus as f64 * w.param_bytes as f64;
        let per_batch = spec.allreduce_latency + volume / spec.pcie_bw;
        let allreduce_total = per_batch * shard.num_batches() as f64;
        report.epoch_time += allreduce_total;
        // Fold the all-reduce busy time into the breakdown for reporting.
        let mut sim = crate::engine::Sim::new();
        let link = sim.resource("interconnect");
        sim.task(link, allreduce_total, &[], Category::AllReduce);
        let _ = sim.run();
    }
    report
}

/// Convenience: epoch throughput (epochs/s) for a GPU-count sweep.
pub fn scaling_curve(
    spec: &HardwareSpec,
    w: &PpWorkload,
    gen: LoaderGen,
    placement: Placement,
    gpu_counts: &[usize],
) -> Vec<(usize, f64)> {
    gpu_counts
        .iter()
        .map(|&g| {
            let rep = multi_gpu_epoch(spec, w, gen, placement, g);
            (g, rep.throughput())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workload() -> PpWorkload {
        PpWorkload {
            num_train: 1_000_000,
            batch_size: 8000,
            row_bytes: 4 * 128 * 4,
            flops_per_example: 3_000_000,
            chunk_size: 8000,
            param_bytes: 8 << 20,
        }
    }

    #[test]
    fn gpu_placement_scales_nearly_linearly() {
        let spec = HardwareSpec::a6000_server();
        let curve = scaling_curve(
            &spec,
            &workload(),
            LoaderGen::DoubleBuffer,
            Placement::Gpu,
            &[1, 2, 4],
        );
        let s4 = curve[2].1 / curve[0].1;
        // The paper's own Table 3 shows ~2.25x for SIGN on 4 GPUs (all-reduce
        // overhead); require better-than-2x, not ideal scaling.
        assert!(s4 > 2.0, "4-GPU speedup only {s4:.2}");
    }

    #[test]
    fn host_chunk_reshuffle_scaling_saturates() {
        // Table 4: CR is host-bandwidth-bound; 4 GPUs deliver well under 4x.
        let spec = HardwareSpec::a6000_server();
        let curve = scaling_curve(
            &spec,
            &workload(),
            LoaderGen::ChunkReshuffle,
            Placement::Host,
            &[1, 2, 4],
        );
        let s4 = curve[2].1 / curve[0].1;
        assert!(s4 < 3.0, "host CR should saturate, got {s4:.2}x");
        // ... and still be monotone non-decreasing-ish (no catastrophic loss)
        assert!(curve[1].1 >= curve[0].1 * 0.8);
    }

    #[test]
    fn storage_scaling_is_worst() {
        // Section 6.4: "this issue is more pronounced with direct storage
        // access" — the paper only implements single-GPU GDS.
        let spec = HardwareSpec::a6000_server();
        let w = workload();
        let host = scaling_curve(
            &spec,
            &w,
            LoaderGen::ChunkReshuffle,
            Placement::Host,
            &[1, 4],
        );
        let ssd = scaling_curve(
            &spec,
            &w,
            LoaderGen::ChunkReshuffle,
            Placement::Ssd,
            &[1, 4],
        );
        let host_scale = host[1].1 / host[0].1;
        let ssd_scale = ssd[1].1 / ssd[0].1;
        assert!(
            ssd_scale <= host_scale + 1e-9,
            "ssd scaling {ssd_scale:.2} should not beat host {host_scale:.2}"
        );
    }

    #[test]
    #[should_panic(expected = "requested")]
    fn too_many_gpus_panics() {
        let spec = HardwareSpec::a6000_server();
        multi_gpu_epoch(
            &spec,
            &workload(),
            LoaderGen::DoubleBuffer,
            Placement::Gpu,
            8,
        );
    }
}
