//! Shared harness utilities for the experiment binaries and benches.
//!
//! Every table and figure of the paper has a dedicated `exp_*` binary in
//! `src/bin/`; this library holds the plumbing they share — markdown table
//! printing, standard model/dataset constructions at harness scale, and the
//! simulator defaults.

#![deny(missing_docs)]

pub mod exp;

use ppgnn_core::preprocess::{Preprocessor, PrepropOutput};
use ppgnn_graph::synth::{DatasetProfile, SynthDataset};
use ppgnn_graph::Operator;
use ppgnn_models::{Hoga, PpModel, Sgc, Sign};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Scale factor applied to dataset profiles in the experiment binaries —
/// small enough to keep each experiment in minutes on a laptop, large
/// enough for accuracy trends to be meaningful.
pub const HARNESS_SCALE: f64 = 0.12;

/// Quick scale for criterion micro-benchmarks.
pub const MICRO_SCALE: f64 = 0.05;

/// Adjusts a profile for harness-scale *training*: node counts shrink
/// ~100x, so splits that assume millions of nodes (products-sim's 8% train
/// fraction) would leave too few examples per class to learn anything.
/// Ratio preservation for learnability means preserving **per-class train
/// counts**, so when the scaled train split falls under ~20 examples per
/// class the split is rebalanced toward training. Documented as a harness
/// deviation in EXPERIMENTS.md.
pub fn harness_profile(profile: DatasetProfile, scale: f64) -> DatasetProfile {
    let mut p = profile.scaled(scale);
    let train = p.num_nodes as f64 * p.labeled_frac * p.split_frac.0;
    if train < 20.0 * p.num_classes as f64 {
        p.split_frac = (0.4, 0.1, 0.5);
    }
    p
}

/// Generates a dataset + preprocessed features for an experiment.
pub fn prepared(profile: DatasetProfile, hops: usize, seed: u64) -> (SynthDataset, PrepropOutput) {
    let data = SynthDataset::generate(profile, seed).expect("dataset generation succeeds");
    let prep = Preprocessor::new(vec![Operator::SymNorm], hops).run(&data);
    (data, prep)
}

/// The three PP-GNN models at harness dimensions.
pub fn pp_models(
    hops: usize,
    feature_dim: usize,
    num_classes: usize,
    hidden: usize,
    seed: u64,
) -> Vec<(&'static str, Box<dyn PpModel>)> {
    let mut rng = StdRng::seed_from_u64(seed);
    vec![
        (
            "SGC",
            Box::new(Sgc::new(hops, feature_dim, num_classes, &mut rng)) as Box<dyn PpModel>,
        ),
        (
            "SIGN",
            Box::new(Sign::new(
                hops,
                feature_dim,
                hidden,
                num_classes,
                0.1,
                &mut rng,
            )),
        ),
        (
            "HOGA",
            Box::new(Hoga::new(
                hops,
                feature_dim,
                hidden,
                4,
                num_classes,
                0.1,
                &mut rng,
            )),
        ),
    ]
}

/// Prints a markdown table: header row + alignment + body rows.
pub fn print_markdown_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::from("|");
        for (w, c) in widths.iter().zip(cells) {
            s.push_str(&format!(" {c:<w$} |"));
        }
        s
    };
    println!(
        "{}",
        line(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>())
    );
    let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    println!("{}", line(&sep));
    for row in rows {
        println!("{}", line(row));
    }
}

/// Geometric mean of a slice (`0.0` for empty input).
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_of_constants_is_the_constant() {
        assert!((geomean(&[3.0, 3.0, 3.0]) - 3.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn pp_models_have_expected_names() {
        let models = pp_models(2, 8, 3, 16, 0);
        let names: Vec<&str> = models.iter().map(|(n, _)| *n).collect();
        assert_eq!(names, vec!["SGC", "SIGN", "HOGA"]);
    }
}
