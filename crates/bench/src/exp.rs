//! Shared experiment plumbing for the `exp_*` binaries.

use ppgnn_core::bridge::{mp_workload, pp_workload, WorkloadScale};
use ppgnn_core::preprocess::PrepropOutput;
use ppgnn_core::trainer::{self, LoaderKind, MpTrainReport, TrainConfig, TrainReport, Trainer};
use ppgnn_graph::synth::{DatasetProfile, SynthDataset};
use ppgnn_memsim::{HardwareSpec, MpWorkload, PpWorkload};
use ppgnn_models::{Gat, GraphSage, MpModel, PpModel};
use ppgnn_sampler::{
    LaborSampler, LadiesSampler, NeighborSampler, SaintNodeSampler, SampleStats, Sampler,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Default epoch budget for accuracy experiments (kept small; trends, not
/// SOTA numbers, are the target).
pub const ACC_EPOCHS: usize = 12;

/// Default harness batch size (the paper uses 8000 at full scale; 256
/// preserves the batches-per-epoch ratio at harness scale).
pub const BATCH: usize = 256;

/// Standard training config for PP-GNN accuracy runs.
pub fn pp_config(epochs: usize, loader: LoaderKind) -> TrainConfig {
    TrainConfig {
        epochs,
        batch_size: BATCH,
        loader,
        lr: 3e-3,
        ..TrainConfig::default()
    }
}

/// Trains a PP model and returns its report.
pub fn train_pp(
    model: &mut dyn PpModel,
    prep: &PrepropOutput,
    epochs: usize,
    loader: LoaderKind,
) -> TrainReport {
    let mut t = Trainer::new(pp_config(epochs, loader));
    t.fit(model, prep).expect("training partition is non-empty")
}

/// Trains an MP model with the given sampler and returns its report.
pub fn train_mp(
    model: &mut dyn MpModel,
    sampler: &mut dyn Sampler,
    data: &SynthDataset,
    epochs: usize,
) -> MpTrainReport {
    trainer::fit_mp(
        model,
        sampler,
        &data.graph,
        &data.features,
        &data.labels,
        &data.split.train,
        &data.split.val,
        &data.split.test,
        &pp_config(epochs, LoaderKind::DoubleBuffer),
    )
    .expect("training partition is non-empty")
}

/// Builds a sampler by name at the paper's fanout settings (scaled depth).
pub fn make_sampler(name: &str, layers: usize, seed: u64) -> Box<dyn Sampler> {
    // Paper fanouts: [15 10 5 (3 3 3)] for SAGE, LADIES budget 512,
    // SAINT node budget = batch size.
    let fanouts: Vec<usize> = [15usize, 10, 5, 3, 3, 3][..layers].to_vec();
    match name {
        "neighbor" => Box::new(NeighborSampler::new(fanouts, seed)),
        "labor" => Box::new(LaborSampler::new(fanouts, seed)),
        "ladies" => Box::new(LadiesSampler::new(layers, 512, seed)),
        "saint" => Box::new(SaintNodeSampler::new(layers, BATCH, seed)),
        other => panic!("unknown sampler {other}"),
    }
}

/// Builds MP backbones at harness dimensions.
pub fn make_sage(layers: usize, profile: &DatasetProfile, seed: u64) -> GraphSage {
    let mut rng = StdRng::seed_from_u64(seed);
    GraphSage::new(
        layers,
        profile.feature_dim,
        64,
        profile.num_classes,
        &mut rng,
    )
}

/// GAT backbone at harness dimensions (paper: 128 per channel × 4 heads).
pub fn make_gat(layers: usize, profile: &DatasetProfile, seed: u64) -> Gat {
    let mut rng = StdRng::seed_from_u64(seed);
    Gat::new(
        layers,
        profile.feature_dim,
        16,
        4,
        profile.num_classes,
        &mut rng,
    )
}

/// Measured MP workload: runs the sampler at two probe batch sizes, fits
/// the sublinear growth of unique sampled nodes (dedup increases with the
/// seed count), and extrapolates the statistics to the paper's batch size
/// of 8000 — so the simulated epochs move a realistic byte volume instead
/// of the saturation-capped probe numbers.
pub fn measured_mp_workload(
    profile: &DatasetProfile,
    data: &SynthDataset,
    sampler: &mut dyn Sampler,
    model: &dyn MpModel,
    batches: usize,
) -> MpWorkload {
    const PAPER_BATCH: usize = 8000;
    let n = data.graph.num_nodes();
    let probe = |seeds_per_batch: usize, sampler: &mut dyn Sampler| -> (SampleStats, u64) {
        let mut stats = SampleStats::default();
        let mut flops = 0u64;
        for b in 0..batches {
            let seeds: Vec<usize> = (0..seeds_per_batch)
                .map(|i| (b * seeds_per_batch + i) % n)
                .collect();
            let batch = sampler.sample(&data.graph, &seeds);
            flops += model.flops_per_batch(&batch);
            stats.accumulate(&batch.stats);
        }
        (stats, flops / batches as u64)
    };
    let (small, _) = probe(BATCH / 4, sampler);
    let (large, flops_per_batch) = probe(BATCH, sampler);

    // unique-node growth exponent: nodes ∝ b^e, e = log ratio / log 4
    let ratio = large.input_nodes as f64 / small.input_nodes.max(1) as f64;
    let exponent = (ratio.ln() / 4.0f64.ln()).clamp(0.5, 1.0);
    let scale_up = (PAPER_BATCH as f64 / BATCH as f64).powf(exponent);
    let linear_up = PAPER_BATCH as f64 / BATCH as f64;

    let mut stats = large;
    stats.input_nodes = (stats.input_nodes as f64 * scale_up) as usize;
    stats.total_nodes = (stats.total_nodes as f64 * scale_up) as usize;
    stats.total_edges = (stats.total_edges as f64 * linear_up) as usize;
    stats.seeds = PAPER_BATCH * batches;
    mp_workload(
        profile,
        &stats,
        batches,
        (flops_per_batch as f64 * linear_up) as u64,
        PAPER_BATCH,
        4 << 20,
        WorkloadScale::Paper,
    )
}

/// Paper-scale PP workload for a model on a profile (batch 8000, chunk
/// 8000, single sym-norm operator — the paper's evaluation setting).
pub fn paper_pp_workload(profile: &DatasetProfile, model: &dyn PpModel) -> PpWorkload {
    pp_workload(profile, model, 1, 8000, 8000, WorkloadScale::Paper)
}

/// The simulation server used by every performance-plane experiment.
pub fn server() -> HardwareSpec {
    HardwareSpec::a6000_server()
}
