//! Figures 7 & 11: the accuracy–efficiency trade-off. Accuracy from real
//! training at harness scale; training throughput from the paper-scale
//! simulator with optimized loaders (PP) and the best MP systems.
//!
//! Run with: `cargo run --release -p ppgnn-bench --bin exp_fig7 [dataset]`
//! where `dataset` is `wiki` (default, Figure 7), `products` or `pokec`
//! (Figure 11).

use ppgnn_bench::exp::{
    make_gat, make_sage, make_sampler, measured_mp_workload, paper_pp_workload, server, train_mp,
    train_pp, ACC_EPOCHS,
};
use ppgnn_bench::{prepared, print_markdown_table, HARNESS_SCALE};
use ppgnn_core::trainer::LoaderKind;
use ppgnn_graph::synth::{DatasetProfile, SynthDataset};
use ppgnn_memsim::{mp_epoch, pp_epoch, LoaderGen, MpSystem, Placement};
use ppgnn_models::{Hoga, MpModel, Sgc, Sign};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "wiki".into());
    let paper_profile = match which.as_str() {
        "products" => DatasetProfile::products_sim(),
        "pokec" => DatasetProfile::pokec_sim(),
        _ => DatasetProfile::wiki_sim(),
    };
    let profile = ppgnn_bench::harness_profile(paper_profile, HARNESS_SCALE);
    let spec = server();
    println!(
        "## Figure 7/11 — accuracy vs throughput, {}\n",
        paper_profile.name
    );
    println!("(accuracy: real training at harness scale; throughput: simulated paper scale)\n");

    let mut rows = Vec::new();
    for &depth in &[2usize, 4, 6] {
        let (data, prep) = prepared(profile, depth, 42);
        let f = profile.feature_dim;
        let c = profile.num_classes;

        // --- PP-GNNs: optimized pipeline (chunk reshuffling, host) ---
        let mut rng = StdRng::seed_from_u64(11);
        let mut pp_entries: Vec<(&str, Box<dyn ppgnn_models::PpModel>)> = vec![
            ("SGC", Box::new(Sgc::new(depth, f, c, &mut rng))),
            ("SIGN", Box::new(Sign::new(depth, f, 48, c, 0.1, &mut rng))),
            (
                "HOGA",
                Box::new(Hoga::new(depth, f, 48, 4, c, 0.1, &mut rng)),
            ),
        ];
        for (name, model) in pp_entries.iter_mut() {
            let acc =
                train_pp(model.as_mut(), &prep, ACC_EPOCHS, LoaderKind::DoubleBuffer).test_acc;
            let w = paper_pp_workload(&paper_profile, model.as_ref());
            let t = pp_epoch(&spec, &w, LoaderGen::ChunkReshuffle, Placement::Host).epoch_time;
            rows.push(vec![
                format!("{name}-{depth}"),
                format!("{:.1}", 100.0 * acc),
                format!("{:.2}", 1.0 / t),
            ]);
        }

        // --- MP-GNNs with each sampler (preload system, the best DGL) ---
        for sampler_name in ["neighbor", "labor", "ladies", "saint"] {
            let mut sampler = make_sampler(sampler_name, depth, 11);
            let mut model = make_sage(depth, &profile, 11);
            let acc = train_mp(&mut model, sampler.as_mut(), &data, ACC_EPOCHS).test_acc;
            let probe_data =
                SynthDataset::generate(paper_profile.scaled(0.5), 1).expect("generation succeeds");
            let mut probe_sampler = make_sampler(sampler_name, depth, 12);
            let mp: Box<dyn MpModel> = Box::new(make_sage(depth, &profile, 11));
            let w = measured_mp_workload(
                &paper_profile,
                &probe_data,
                probe_sampler.as_mut(),
                mp.as_ref(),
                3,
            );
            let t = mp_epoch(&spec, &w, MpSystem::Preload).epoch_time;
            rows.push(vec![
                format!("SAGE-{sampler_name}-{depth}"),
                format!("{:.1}", 100.0 * acc),
                format!("{:.2}", 1.0 / t),
            ]);
        }
        // GAT with LABOR at depth 2/4 only (expensive)
        if depth <= 4 {
            let mut sampler = make_sampler("labor", depth, 11);
            let mut model = make_gat(depth, &profile, 11);
            let acc = train_mp(&mut model, sampler.as_mut(), &data, ACC_EPOCHS).test_acc;
            let probe_data =
                SynthDataset::generate(paper_profile.scaled(0.5), 1).expect("generation succeeds");
            let mut probe_sampler = make_sampler("labor", depth, 12);
            let mp: Box<dyn MpModel> = Box::new(make_gat(depth, &profile, 11));
            let w = measured_mp_workload(
                &paper_profile,
                &probe_data,
                probe_sampler.as_mut(),
                mp.as_ref(),
                3,
            );
            let t = mp_epoch(&spec, &w, MpSystem::Preload).epoch_time;
            rows.push(vec![
                format!("GAT-labor-{depth}"),
                format!("{:.1}", 100.0 * acc),
                format!("{:.2}", 1.0 / t),
            ]);
        }
    }
    print_markdown_table(&["config", "test acc %", "throughput (epoch/s)"], &rows);
    println!("\nshape check: optimized PP-GNNs sit on the Pareto frontier — comparable");
    println!("accuracy to node-wise-sampled MP-GNNs at multiples of the throughput;");
    println!("LADIES/SAINT trade accuracy away; SGC is fastest but least accurate.");
}
