//! Stage-breakdown profile of one full pipeline iteration (preprocess +
//! train + eval) through the telemetry layer — the repo's reproduction of
//! the paper's stage-breakdown characterization, measured from spans
//! instead of ad-hoc timers.
//!
//! Three phases:
//!
//! 1. **untraced baseline** — best-of-`reps` wall time of one pipeline
//!    iteration with tracing disabled;
//! 2. **traced iteration** — the same iteration with tracing enabled:
//!    exports a Chrome `trace_event` JSON (loadable in Perfetto /
//!    `chrome://tracing`, destination per `PPGNN_TRACE_OUT`), prints the
//!    hierarchical span summary plus the metrics readout, and checks that
//!    the top-level spans account for the traced wall time to within 10%;
//! 3. **traced-off re-measure** — best-of-`reps` wall time with tracing
//!    disabled again, so `scripts/check_trace_overhead.py` can gate that
//!    the disabled-path instrumentation costs <3% wall time.
//!
//! Writes a machine-readable `BENCH_trace_profile.json` (destination
//! overridable via the first CLI argument); `PPGNN_BENCH_SMOKE=1` reduces
//! repetitions. Run with:
//! `PPGNN_TRACE=1 cargo run --release -p ppgnn-bench --bin exp_trace_profile`
//! (the knob is read for the default trace destination; the binary drives
//! the tracing state itself so it also works without it).

use std::time::Instant;

use ppgnn_bench::exp::train_pp;
use ppgnn_bench::{pp_models, print_markdown_table, MICRO_SCALE};
use ppgnn_core::preprocess::Preprocessor;
use ppgnn_core::trainer::LoaderKind;
use ppgnn_graph::synth::{DatasetProfile, SynthDataset};
use ppgnn_graph::Operator;
use ppgnn_telemetry::SpanEvent;
use ppgnn_tensor::knobs;

const HOPS: usize = 3;
const EPOCHS: usize = 2;

/// One pipeline iteration: streaming pre-propagation (K=1, R=3) plus a
/// short SIGN training run with per-epoch eval — every stage the telemetry
/// layer instruments. Returns the wall seconds.
fn pipeline_iteration(data: &SynthDataset, profile: &DatasetProfile) -> f64 {
    let t0 = Instant::now();
    let prep = Preprocessor::new(vec![Operator::SymNorm], HOPS).run(data);
    let mut models = {
        let _init_span = ppgnn_telemetry::span("model_init");
        pp_models(HOPS, profile.feature_dim, profile.num_classes, 48, 3)
    };
    let (_, model) = &mut models[1]; // SIGN: mid-weight, exercises GEMM
    train_pp(model.as_mut(), &prep, EPOCHS, LoaderKind::DoubleBuffer);
    t0.elapsed().as_secs_f64()
}

/// Best-of-`reps` wall seconds of one pipeline iteration.
fn best_of(reps: usize, data: &SynthDataset, profile: &DatasetProfile) -> f64 {
    let mut best = f64::MAX;
    for _ in 0..reps {
        best = best.min(pipeline_iteration(data, profile));
    }
    best
}

/// Aggregates top-level spans (no enclosing span on the same thread) by
/// name: `(name, calls, total_ns)`, in first-seen order.
fn top_level_totals(events: &[SpanEvent]) -> Vec<(&'static str, u64, u64)> {
    let mut sorted: Vec<&SpanEvent> = events.iter().collect();
    sorted.sort_by_key(|e| (e.tid, e.start_ns, std::cmp::Reverse(e.dur_ns)));
    let mut out: Vec<(&'static str, u64, u64)> = Vec::new();
    let mut stack: Vec<u64> = Vec::new(); // enclosing span end times
    let mut cur_tid = u32::MAX;
    for e in sorted {
        if e.tid != cur_tid {
            stack.clear();
            cur_tid = e.tid;
        }
        while stack.last().is_some_and(|&end| e.start_ns >= end) {
            stack.pop();
        }
        if stack.is_empty() {
            match out.iter_mut().find(|(n, _, _)| *n == e.name) {
                Some(row) => {
                    row.1 += 1;
                    row.2 += e.dur_ns;
                }
                None => out.push((e.name, 1, e.dur_ns)),
            }
        }
        stack.push(e.start_ns + e.dur_ns);
    }
    out
}

fn main() {
    let profile = DatasetProfile::pokec_sim().scaled(MICRO_SCALE);
    let data = SynthDataset::generate(profile, 42).expect("dataset generation succeeds");
    let smoke = knobs::flag(knobs::BENCH_SMOKE);
    // Even smoke mode keeps several best-of reps: the CI overhead gate
    // consumes these numbers, and on an ~10ms iteration a single
    // descheduling burst would swamp the 3% tolerance.
    let reps = if smoke { 3 } else { 5 };

    println!("## Trace profile — one pipeline iteration (preprocess K=1 R=3 + SIGN train)\n");

    // Phase 1: untraced baseline.
    ppgnn_telemetry::set_enabled(false);
    best_of(1, &data, &profile); // warm-up (pool spin-up, page cache)
    let untraced_s = best_of(reps, &data, &profile);
    println!("untraced baseline: {untraced_s:.4} s (best of {reps})");

    // Phase 2: one traced iteration + export.
    ppgnn_telemetry::reset_metrics();
    ppgnn_telemetry::reset_trace();
    ppgnn_telemetry::set_enabled(true);
    let traced_s = pipeline_iteration(&data, &profile);
    ppgnn_telemetry::set_enabled(false);
    println!("traced iteration:  {traced_s:.4} s\n");

    let events = ppgnn_telemetry::take_events();
    let dropped = ppgnn_telemetry::dropped_events();
    let stages = top_level_totals(&events);
    let span_sum_ns: u64 = stages.iter().map(|&(_, _, ns)| ns).sum();
    let coverage = span_sum_ns as f64 / 1e9 / traced_s.max(f64::EPSILON);

    println!("### stage breakdown (top-level spans)\n");
    let rows: Vec<Vec<String>> = stages
        .iter()
        .map(|&(name, calls, ns)| {
            vec![
                name.to_string(),
                format!("{calls}"),
                format!("{:.2}", ns as f64 / 1e6),
                format!("{:.1}%", 100.0 * ns as f64 / 1e9 / traced_s),
            ]
        })
        .collect();
    print_markdown_table(&["stage", "calls", "total ms", "of wall"], &rows);
    println!(
        "\nstage coverage: {:.1}% of traced wall ({} events, {} dropped)",
        coverage * 100.0,
        events.len(),
        dropped
    );
    // Spans must explain the wall time they claim to profile; a large gap
    // means a stage lost its span (regression in the instrumentation).
    if (coverage - 1.0).abs() > 0.10 {
        eprintln!("warning: stage breakdown off by >10% from traced wall time");
    }

    let trace_path = ppgnn_telemetry::write_chrome_trace(None).expect("trace export writes");
    println!(
        "wrote Chrome trace to {} (load in Perfetto)",
        trace_path.display()
    );
    println!("\n{}", ppgnn_telemetry::trace_summary());
    println!("{}", ppgnn_telemetry::metrics_summary());
    ppgnn_telemetry::reset_trace();

    // Phase 3: traced-off re-measure — the overhead the gate cares about.
    let traced_off_s = best_of(reps, &data, &profile);
    let overhead = traced_off_s / untraced_s.max(f64::EPSILON);
    println!("traced-off re-measure: {traced_off_s:.4} s ({overhead:.4}x baseline)");

    let json = format!(
        concat!(
            "{{\n",
            "  \"profile\": \"pokec_sim\",\n",
            "  \"hops\": {},\n",
            "  \"epochs\": {},\n",
            "  \"reps\": {},\n",
            "  \"smoke\": {},\n",
            "  \"untraced_seconds\": {:.6},\n",
            "  \"traced_seconds\": {:.6},\n",
            "  \"traced_off_seconds\": {:.6},\n",
            "  \"traced_off_ratio\": {:.4},\n",
            "  \"stage_coverage\": {:.4},\n",
            "  \"span_events\": {},\n",
            "  \"span_events_dropped\": {},\n",
            "  \"trace_path\": \"{}\"\n",
            "}}\n"
        ),
        HOPS,
        EPOCHS,
        reps,
        smoke,
        untraced_s,
        traced_s,
        traced_off_s,
        overhead,
        coverage,
        events.len(),
        dropped,
        trace_path.display(),
    );
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_trace_profile.json".to_string());
    if let Err(e) = std::fs::write(&path, json) {
        eprintln!("warning: could not write {path}: {e}");
    } else {
        println!("wrote trace-profile artifact to {path}");
    }
}
