//! Table 7 (Appendix G): preprocessing overhead relative to a single
//! training run. Both quantities measured for real at analog scale.
//!
//! Run with: `cargo run --release -p ppgnn-bench --bin exp_table7`

use ppgnn_bench::exp::{pp_config, BATCH};
use ppgnn_bench::{print_markdown_table, HARNESS_SCALE};
use ppgnn_core::preprocess::Preprocessor;
use ppgnn_core::trainer::{LoaderKind, Trainer};
use ppgnn_graph::synth::{DatasetProfile, SynthDataset};
use ppgnn_graph::Operator;
use ppgnn_models::Hoga;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    println!("## Table 7 — preprocessing overhead vs one training run (all measured)\n");
    let mut rows = Vec::new();
    for profile in DatasetProfile::all_profiles() {
        let scale = if profile.num_nodes > 50_000 {
            HARNESS_SCALE / 2.0
        } else {
            HARNESS_SCALE
        };
        let profile = profile.scaled(scale);
        // Paper hop/epoch settings per dataset (Appendix G).
        let (hops, epochs) = match profile.name {
            "papers100m-sim" => (4, 20),
            "igb-medium-sim" | "igb-large-sim" => (3, 10),
            "products-sim" => (6, 20),
            _ => (6, 20),
        };
        let data = SynthDataset::generate(profile, 42).expect("generation succeeds");
        let prep = Preprocessor::new(vec![Operator::SymNorm], hops).run(&data);

        // One (short) HOGA run at the max hop count; per-epoch time × the
        // paper's per-dataset epoch budget estimates a full training run.
        let mut rng = StdRng::seed_from_u64(13);
        let mut model = Hoga::new(
            hops,
            profile.feature_dim,
            32,
            4,
            profile.num_classes,
            0.1,
            &mut rng,
        );
        let mut trainer = Trainer::new(pp_config(3, LoaderKind::Chunk { chunk_size: BATCH }));
        let report = trainer.fit(&mut model, &prep).expect("training runs");
        let epoch_s = report.mean_epoch_seconds();
        let run_s = epoch_s * epochs as f64;
        rows.push(vec![
            profile.name.to_string(),
            hops.to_string(),
            format!("{:.2}", prep.preprocess_seconds),
            format!("{epoch_s:.3}"),
            epochs.to_string(),
            format!("{run_s:.2}"),
            format!("{:.0}%", 100.0 * prep.preprocess_seconds / run_s),
        ]);
    }
    print_markdown_table(
        &[
            "dataset",
            "hops",
            "preproc (s)",
            "epoch (s)",
            "epochs/run",
            "run (s)",
            "preproc / run",
        ],
        &rows,
    );
    println!("\nshape check: preprocessing is a fraction of one training run for most");
    println!("datasets (paper: 3–53%; papers100M is the outlier at 90% because only");
    println!("1.4% of nodes train while preprocessing touches the full graph).");
}
