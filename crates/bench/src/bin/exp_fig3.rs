//! Figures 3 & 10: convergence-rate comparison — the epoch at which each
//! model first reaches 99 % of its peak validation accuracy. Real training.
//! Pass a depth argument (2/3/5/6) for the Figure 10 panels; default 4.
//!
//! Run with: `cargo run --release -p ppgnn-bench --bin exp_fig3`

use ppgnn_bench::exp::{make_gat, make_sage, make_sampler, train_mp, train_pp};
use ppgnn_bench::{prepared, print_markdown_table, HARNESS_SCALE};
use ppgnn_core::trainer::LoaderKind;
use ppgnn_graph::synth::DatasetProfile;
use ppgnn_models::{Hoga, Sign};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // Figure 3 uses 4 layers/hops; pass 2/3/5/6 to regenerate the Figure 10
    // panels.
    let depth: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(4);
    let epochs = 30;
    println!("## Figure 3 — convergence point (99% of peak val acc), {depth}-layer/hop, {epochs} epochs\n");
    let mut rows = Vec::new();
    for profile in DatasetProfile::medium_profiles() {
        let profile = ppgnn_bench::harness_profile(profile, HARNESS_SCALE);
        let (data, prep) = prepared(profile, depth, 42);
        let f = profile.feature_dim;
        let c = profile.num_classes;

        let mut rng = StdRng::seed_from_u64(3);
        let mut hoga = Hoga::new(depth, f, 48, 4, c, 0.1, &mut rng);
        let hoga_rep = train_pp(&mut hoga, &prep, epochs, LoaderKind::DoubleBuffer);

        let mut sign = Sign::new(depth, f, 48, c, 0.1, &mut rng);
        let sign_rep = train_pp(&mut sign, &prep, epochs, LoaderKind::DoubleBuffer);

        let mut sage = make_sage(depth, &profile, 3);
        let mut sampler = make_sampler("labor", depth, 3);
        let sage_rep = train_mp(&mut sage, sampler.as_mut(), &data, epochs);

        let mut gat = make_gat(depth, &profile, 3);
        let mut sampler = make_sampler("neighbor", depth, 3);
        let gat_rep = train_mp(&mut gat, sampler.as_mut(), &data, epochs);

        let fmt = |cp: Option<usize>, acc: f64| {
            format!(
                "{} ({:.1}%)",
                cp.map_or("-".into(), |e| e.to_string()),
                100.0 * acc
            )
        };
        rows.push(vec![
            profile.name.to_string(),
            fmt(hoga_rep.convergence_point, hoga_rep.best_val_acc),
            fmt(sign_rep.convergence_point, sign_rep.best_val_acc),
            fmt(sage_rep.convergence_point, sage_rep.best_val_acc),
            fmt(gat_rep.convergence_point, gat_rep.best_val_acc),
        ]);
    }
    print_markdown_table(
        &["dataset", "HOGA", "SIGN", "SAGE-LABOR", "GAT-Neighbor"],
        &rows,
    );
    println!("\nshape check: PP-GNN convergence points are comparable to or earlier than");
    println!("MP-GNN ones (the paper's Figure 3 conclusion).");
}
