//! Figure 13: convergence of HOGA and SIGN on papers100M (2/3/4 hops) —
//! validation-accuracy curves and 99 %-of-peak convergence points, real
//! training on the analog.
//!
//! Run with: `cargo run --release -p ppgnn-bench --bin exp_fig13`

use ppgnn_bench::exp::{train_pp, ACC_EPOCHS};
use ppgnn_bench::{prepared, print_markdown_table};
use ppgnn_core::trainer::LoaderKind;
use ppgnn_graph::synth::DatasetProfile;
use ppgnn_models::{Hoga, PpModel, Sign};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let epochs = ACC_EPOCHS * 2;
    println!("## Figure 13 — convergence on papers100m-sim ({epochs} epochs)\n");
    let mut rows = Vec::new();
    for hops in [2usize, 3, 4] {
        let profile = DatasetProfile::papers100m_sim();
        let (_, prep) = prepared(profile, hops, 42);
        let f = profile.feature_dim;
        let c = profile.num_classes;
        let mut rng = StdRng::seed_from_u64(17);
        let mut entries: Vec<(&str, Box<dyn PpModel>)> = vec![
            (
                "HOGA",
                Box::new(Hoga::new(hops, f, 64, 4, c, 0.1, &mut rng)),
            ),
            ("SIGN", Box::new(Sign::new(hops, f, 64, c, 0.1, &mut rng))),
        ];
        for (name, model) in entries.iter_mut() {
            let rep = train_pp(model.as_mut(), &prep, epochs, LoaderKind::DoubleBuffer);
            let curve: Vec<String> = rep
                .history
                .iter()
                .step_by(4)
                .map(|e| format!("{:.0}", 100.0 * e.val_acc))
                .collect();
            rows.push(vec![
                format!("{name}-{hops}hop"),
                rep.convergence_point.map_or("-".into(), |e| e.to_string()),
                format!("{:.1}", 100.0 * rep.best_val_acc),
                format!("{:.1}", 100.0 * rep.test_acc),
                curve.join(" "),
            ]);
        }
    }
    print_markdown_table(
        &[
            "model",
            "conv. epoch",
            "best val %",
            "test %",
            "val curve (every 4th epoch)",
        ],
        &rows,
    );
    println!("\nshape check: both PP models converge within a few tens of epochs (paper:");
    println!("21–34), with HOGA slightly ahead of SIGN in final accuracy.");
}
