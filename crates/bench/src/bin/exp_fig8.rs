//! Figure 8 / Figure 12 / Table 6: influence of chunk reshuffling on
//! convergence and accuracy. Real training with the chunk loader across
//! chunk sizes; chunk size 1 is exact SGD-RR.
//!
//! Run with: `cargo run --release -p ppgnn-bench --bin exp_fig8`

use ppgnn_bench::exp::{pp_config, BATCH};
use ppgnn_bench::{prepared, print_markdown_table, HARNESS_SCALE};
use ppgnn_core::trainer::{LoaderKind, Trainer};
use ppgnn_graph::synth::DatasetProfile;
use ppgnn_models::{Hoga, PpModel, Sign};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let hops = 4;
    let epochs = 20;
    // Paper sweep {1, 1000, 2000, 4000, 8000} at batch 8000 ⇒ harness sweep
    // keeps the chunk/batch ratios: {1, b/8, b/4, b/2, b}.
    let chunk_sizes = [1usize, BATCH / 8, BATCH / 4, BATCH / 2, BATCH];

    println!("## Figure 8 / Table 6 — chunk-reshuffling sensitivity (HOGA & SIGN, {hops} hops)\n");
    for profile in DatasetProfile::medium_profiles() {
        let profile = ppgnn_bench::harness_profile(profile, HARNESS_SCALE);
        let (_, prep) = prepared(profile, hops, 42);
        println!("### {}\n", profile.name);
        let mut rows = Vec::new();
        for model_name in ["HOGA", "SIGN"] {
            for &cs in &chunk_sizes {
                let mut rng = StdRng::seed_from_u64(21);
                let mut model: Box<dyn PpModel> = match model_name {
                    "HOGA" => Box::new(Hoga::new(
                        hops,
                        profile.feature_dim,
                        48,
                        4,
                        profile.num_classes,
                        0.1,
                        &mut rng,
                    )),
                    _ => Box::new(Sign::new(
                        hops,
                        profile.feature_dim,
                        48,
                        profile.num_classes,
                        0.1,
                        &mut rng,
                    )),
                };
                let mut trainer =
                    Trainer::new(pp_config(epochs, LoaderKind::Chunk { chunk_size: cs }));
                let report = trainer.fit(model.as_mut(), &prep).expect("training runs");
                rows.push(vec![
                    model_name.to_string(),
                    cs.to_string(),
                    format!("{:.2}", 100.0 * report.best_val_acc),
                    format!("{:.2}", 100.0 * report.test_acc),
                    report
                        .convergence_point
                        .map_or("-".into(), |e| e.to_string()),
                ]);
            }
        }
        print_markdown_table(
            &[
                "model",
                "chunk size",
                "best val acc %",
                "test acc %",
                "conv. epoch",
            ],
            &rows,
        );
        println!();
    }
    println!("shape check: test accuracy varies by well under 1 point across chunk sizes");
    println!("(chunk size 1 ≡ SGD-RR) — the paper's justification for SGD-CR.");
}
