//! Table 2: dataset statistics and preprocessing cost. Graph/split
//! statistics are measured on the generated analogs (with the mirrored
//! paper-scale numbers alongside); preprocessing is timed for real.
//!
//! Run with: `cargo run --release -p ppgnn-bench --bin exp_table2`

use ppgnn_bench::{print_markdown_table, HARNESS_SCALE};
use ppgnn_core::preprocess::Preprocessor;
use ppgnn_graph::synth::{DatasetProfile, SynthDataset};
use ppgnn_graph::{stats, Operator};

fn main() {
    println!("## Table 2 — dataset statistics (sim analogs; paper scale in parentheses)\n");
    let mut rows = Vec::new();
    for profile in DatasetProfile::all_profiles() {
        // Large profiles are scaled harder to keep this binary quick.
        let scale = if profile.num_nodes > 50_000 {
            HARNESS_SCALE / 2.0
        } else {
            HARNESS_SCALE
        };
        let scaled = profile.scaled(scale);
        let data = SynthDataset::generate(scaled, 42).expect("generation succeeds");
        // Paper hop counts (Appendix G): 6 for medium, 4 for papers, 3 for IGB.
        let hops = match profile.name {
            "papers100m-sim" => 4,
            "igb-medium-sim" | "igb-large-sim" => 3,
            _ => 6,
        };
        let t = std::time::Instant::now();
        let prep = Preprocessor::new(vec![Operator::SymNorm], hops).run(&data);
        let _ = t;
        rows.push(vec![
            profile.name.to_string(),
            format!(
                "{} ({:.1}M)",
                data.graph.num_nodes(),
                profile.paper.num_nodes as f64 / 1e6
            ),
            format!(
                "{} ({:.0}M)",
                data.graph.num_edges(),
                profile.paper.num_edges as f64 / 1e6
            ),
            format!("{:.1}%", 100.0 * profile.labeled_frac),
            profile.feature_dim.to_string(),
            profile.num_classes.to_string(),
            format!("{:.2}", stats::edge_homophily(&data.graph, &data.labels)),
            format!(
                "{:.1} MB ({:.0} GB)",
                prep.expansion.expanded_bytes as f64 / 1e6,
                (profile.paper.feature_bytes * (hops as u64 + 1)) as f64
                    * profile.paper.labeled_frac
                    / 1e9
            ),
            format!("{:.2}s", prep.preprocess_seconds),
        ]);
    }
    print_markdown_table(
        &[
            "dataset",
            "#nodes (paper)",
            "#edges (paper)",
            "labeled",
            "F",
            "classes",
            "homophily",
            "expanded input (paper)",
            "preproc time",
        ],
        &rows,
    );
    println!("\nshape check: papers100m's labeled fraction (1.4%) collapses its expanded");
    println!("input; igb-large's paper-scale expansion (≈1.6 TB) exceeds host memory.");
}
