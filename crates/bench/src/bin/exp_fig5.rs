//! Figure 5: training-time breakdown of PP-GNN baselines on the products
//! profile — data loading dominates. Two planes:
//! (a) real instrumented CPU training with the baseline loader,
//! (b) simulated paper-scale breakdown.
//!
//! Run with: `cargo run --release -p ppgnn-bench --bin exp_fig5`

use ppgnn_bench::exp::{paper_pp_workload, server, train_pp};
use ppgnn_bench::{pp_models, prepared, print_markdown_table, HARNESS_SCALE};
use ppgnn_core::trainer::LoaderKind;
use ppgnn_graph::synth::DatasetProfile;
use ppgnn_memsim::{pp_epoch, LoaderGen, Placement};

fn main() {
    let profile = DatasetProfile::products_sim().scaled(HARNESS_SCALE);
    let depth = 3;
    let (_, prep) = prepared(profile, depth, 42);

    println!("## Figure 5 — PP-GNN training-time breakdown, products profile\n");
    println!("### functional plane (real CPU training, baseline loader)\n");
    let mut rows = Vec::new();
    for (name, mut model) in pp_models(depth, profile.feature_dim, profile.num_classes, 48, 3) {
        let report = train_pp(model.as_mut(), &prep, 4, LoaderKind::Baseline);
        let e = report.history.last().expect("epochs ran");
        let total = e.loading_s + e.forward_s + e.backward_s + e.optim_s;
        rows.push(vec![
            name.to_string(),
            format!("{:.1}%", 100.0 * e.loading_s / total),
            format!("{:.1}%", 100.0 * e.forward_s / total),
            format!("{:.1}%", 100.0 * e.backward_s / total),
            format!("{:.1}%", 100.0 * e.optim_s / total),
        ]);
    }
    print_markdown_table(
        &["model", "data loading", "forward", "backward", "optimizer"],
        &rows,
    );

    println!("\n### performance plane (simulated paper scale, baseline loader)\n");
    let spec = server();
    let paper = DatasetProfile::products_sim();
    let mut rows = Vec::new();
    for (name, model) in pp_models(depth, paper.feature_dim, paper.num_classes, 256, 3) {
        let rep = pp_epoch(
            &spec,
            &paper_pp_workload(&paper, model.as_ref()),
            LoaderGen::Baseline,
            Placement::Host,
        );
        rows.push(vec![
            name.to_string(),
            format!("{:.1}%", 100.0 * rep.data_loading_fraction()),
            format!("{:.1}%", 100.0 * (1.0 - rep.data_loading_fraction())),
        ]);
    }
    print_markdown_table(&["model", "data loading", "compute"], &rows);
    println!("\nshape check (paper): HOGA 68.7% / SIGN 88.8% / SGC 91.5% loading —");
    println!("loading dominates everywhere, least for the compute-heaviest model (HOGA).");
}
