//! Figure 14 (Appendix H): influence of data placement on epoch time —
//! GPU w/ RR, Host w/ CR, Host w/ RR, SSD w/ CR — normalized per
//! dataset × model, geometric mean over hops 2–6. Simulated, paper scale.
//!
//! Run with: `cargo run --release -p ppgnn-bench --bin exp_fig14`

use ppgnn_bench::exp::server;
use ppgnn_bench::{geomean, print_markdown_table};
use ppgnn_graph::synth::DatasetProfile;
use ppgnn_memsim::{pp_epoch, LoaderGen, Placement, PpWorkload};
use ppgnn_models::{Hoga, PpModel, Sgc, Sign};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let spec = server();
    let settings = [
        ("GPU w/ RR", LoaderGen::DoubleBuffer, Placement::Gpu),
        ("Host w/ CR", LoaderGen::ChunkReshuffle, Placement::Host),
        ("Host w/ RR", LoaderGen::DoubleBuffer, Placement::Host),
        ("SSD w/ CR", LoaderGen::ChunkReshuffle, Placement::Ssd),
    ];
    println!("## Figure 14 — placement study, epoch time normalized to GPU w/ RR\n");
    let mut rows = Vec::new();
    let mut ssd_vs_host_rr = Vec::new();
    for profile in DatasetProfile::medium_profiles() {
        for model_name in ["HOGA", "SIGN", "SGC"] {
            let mut per_setting: Vec<Vec<f64>> = vec![Vec::new(); settings.len()];
            for hops in 2..=6usize {
                let mut rng = StdRng::seed_from_u64(1);
                let f = profile.feature_dim;
                let c = profile.num_classes;
                let model: Box<dyn PpModel> = match model_name {
                    "HOGA" => Box::new(Hoga::new(hops, f, 256, 4, c, 0.0, &mut rng)),
                    "SIGN" => Box::new(Sign::new(hops, f, 512, c, 0.0, &mut rng)),
                    _ => Box::new(Sgc::new(hops, f, c, &mut rng)),
                };
                let w = PpWorkload {
                    num_train: (profile.paper.num_nodes as f64 * profile.paper.labeled_frac)
                        as usize,
                    batch_size: 8000,
                    row_bytes: (hops as u64 + 1) * profile.paper.feature_dim as u64 * 4,
                    flops_per_example: model.flops_per_example(),
                    chunk_size: 8000,
                    param_bytes: 4 << 20,
                };
                for (i, &(_, gen, placement)) in settings.iter().enumerate() {
                    per_setting[i].push(pp_epoch(&spec, &w, gen, placement).epoch_time);
                }
            }
            let g: Vec<f64> = per_setting.iter().map(|v| geomean(v)).collect();
            rows.push(vec![
                format!("{}-{}", &profile.name[..1].to_uppercase(), model_name),
                "1.00".into(),
                format!("{:.2}", g[1] / g[0]),
                format!("{:.2}", g[2] / g[0]),
                format!("{:.2}", g[3] / g[0]),
            ]);
            ssd_vs_host_rr.push(g[2] / g[3]);
        }
    }
    let headers: Vec<&str> = std::iter::once("dataset-model")
        .chain(settings.iter().map(|&(n, _, _)| n))
        .collect();
    print_markdown_table(&headers, &rows);
    println!(
        "\ngeomean Host-RR / SSD-CR = {:.2} (paper: direct storage ≈ 2% faster than host RR)",
        geomean(&ssd_vs_host_rr)
    );
    println!("shape check: Host/CR ≈ GPU for compute-bound models; Host/RR visibly");
    println!("slower for SIGN/SGC; SSD/CR competitive with Host/RR.");
}
