//! Figure 2: test accuracy vs node receptive field (hops/layers) for
//! LABOR- and SAINT-sampled GraphSAGE and HOGA, on the three medium
//! profiles. Real training at harness scale.
//!
//! Run with: `cargo run --release -p ppgnn-bench --bin exp_fig2`

use ppgnn_bench::exp::{make_sage, make_sampler, train_mp, train_pp, ACC_EPOCHS};
use ppgnn_bench::{prepared, print_markdown_table, HARNESS_SCALE};
use ppgnn_core::trainer::LoaderKind;
use ppgnn_graph::synth::DatasetProfile;
use ppgnn_models::Hoga;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    println!("## Figure 2 — test accuracy vs hops/layers (real training)\n");
    let depths = [2usize, 3, 4, 5, 6];
    for profile in DatasetProfile::medium_profiles() {
        let profile = ppgnn_bench::harness_profile(profile, HARNESS_SCALE);
        println!("### {}\n", profile.name);
        let mut rows = Vec::new();
        for method in ["labor", "saint", "hoga"] {
            let mut cells = vec![method.to_string()];
            for &depth in &depths {
                let (data, prep) = prepared(profile, depth, 42);
                let acc = match method {
                    "hoga" => {
                        let mut rng = StdRng::seed_from_u64(7);
                        let mut model = Hoga::new(
                            depth,
                            profile.feature_dim,
                            48,
                            4,
                            profile.num_classes,
                            0.1,
                            &mut rng,
                        );
                        train_pp(&mut model, &prep, ACC_EPOCHS, LoaderKind::DoubleBuffer).test_acc
                    }
                    sampler_name => {
                        let mut sampler = make_sampler(sampler_name, depth, 7);
                        let mut model = make_sage(depth, &profile, 7);
                        train_mp(&mut model, sampler.as_mut(), &data, ACC_EPOCHS).test_acc
                    }
                };
                cells.push(format!("{:.1}", 100.0 * acc));
            }
            rows.push(cells);
        }
        print_markdown_table(&["method", "2", "3", "4", "5", "6"], &rows);
        println!();
    }
    println!("shape check: accuracy is roughly non-decreasing in depth on the homophilous");
    println!("profiles; HOGA tracks LABOR; SAINT trails (sparse subgraph connectivity).");
}
