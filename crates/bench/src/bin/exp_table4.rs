//! Table 4: IGB-medium — host-resident training, SGD-RR vs chunk
//! reshuffling, 1/2/4 GPUs. Accuracy real (analog), throughput simulated.
//!
//! Run with: `cargo run --release -p ppgnn-bench --bin exp_table4`

use ppgnn_bench::exp::{paper_pp_workload, pp_config, server};
use ppgnn_bench::{prepared, print_markdown_table};
use ppgnn_core::trainer::{LoaderKind, Trainer};
use ppgnn_graph::synth::DatasetProfile;
use ppgnn_memsim::{multigpu, LoaderGen, Placement};
use ppgnn_models::{Hoga, PpModel, Sign};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let paper = DatasetProfile::igb_medium_sim();
    let spec = server();
    println!("## Table 4 — igb-medium: host placement, SGD-RR vs SGD-CR (epoch/min)\n");
    let hops = 2;
    let profile = paper.scaled(0.15);
    let (_, prep) = prepared(profile, hops, 42);
    let f = profile.feature_dim;
    let c = profile.num_classes;

    let mut rows = Vec::new();
    // Each training method must start from identical fresh weights —
    // reusing one instance would hand the second method a head start of
    // the first method's epochs.
    type ModelFactory = Box<dyn Fn() -> Box<dyn PpModel>>;
    let factories: Vec<(&str, ModelFactory)> = vec![
        (
            "SIGN",
            Box::new(move || {
                Box::new(Sign::new(
                    hops,
                    f,
                    48,
                    c,
                    0.1,
                    &mut StdRng::seed_from_u64(4),
                ))
            }),
        ),
        (
            "HOGA",
            Box::new(move || {
                Box::new(Hoga::new(
                    hops,
                    f,
                    48,
                    4,
                    c,
                    0.1,
                    &mut StdRng::seed_from_u64(5),
                ))
            }),
        ),
    ];
    for (name, make) in &factories {
        // Accuracy under both training methods (real), fresh model each.
        let train_with = |loader: LoaderKind| {
            let mut model = make();
            let mut t = Trainer::new(pp_config(12, loader));
            t.fit(model.as_mut(), &prep)
                .expect("training runs")
                .test_acc
        };
        let rr_acc = train_with(LoaderKind::DoubleBuffer);
        let cr_acc = train_with(LoaderKind::Chunk { chunk_size: 256 });
        // Throughput at paper scale (epoch/minute, as in the table).
        let w = paper_pp_workload(&paper, make().as_ref());
        let tput = |gen: LoaderGen, gpus: usize| {
            60.0 / multigpu::multi_gpu_epoch(&spec, &w, gen, Placement::Host, gpus).epoch_time
        };
        for (method, gen, acc) in [
            ("Ours-RR", LoaderGen::DoubleBuffer, rr_acc),
            ("Ours-CR", LoaderGen::ChunkReshuffle, cr_acc),
        ] {
            rows.push(vec![
                name.to_string(),
                method.to_string(),
                format!("{:.1}", 100.0 * acc),
                format!("{:.2}", tput(gen, 1)),
                format!("{:.2}", tput(gen, 2)),
                format!("{:.2}", tput(gen, 4)),
            ]);
        }
    }
    print_markdown_table(
        &["model", "method", "test acc %", "1 GPU", "2 GPUs", "4 GPUs"],
        &rows,
    );
    println!("\nshape check: CR > RR on one GPU (GPU-side assembly); CR scales *worse*");
    println!("(host-bandwidth-bound — the paper measures only ~1.27x from 4 GPUs);");
    println!("accuracy parity between RR and CR.");
}
