//! Table 5: IGB-large — input past host memory, storage-resident training.
//! Functional plane: real training *through the on-disk store* at analog
//! scale. Performance plane: paper-scale throughput (epoch/hour) for
//! GPUDirect chunked PP-GNNs vs storage-based MP-GNN systems.
//!
//! Run with: `cargo run --release -p ppgnn-bench --bin exp_table5`

use ppgnn_bench::exp::{make_sage, make_sampler, measured_mp_workload, paper_pp_workload, server};
use ppgnn_bench::{prepared, print_markdown_table};
use ppgnn_core::loader::{Loader, StorageChunkLoader};
use ppgnn_dataio::{AccessPath, FeatureStore};
use ppgnn_graph::synth::{DatasetProfile, SynthDataset};
use ppgnn_memsim::{mp_epoch, pp_epoch, LoaderGen, MpSystem, Placement};
use ppgnn_models::{Hoga, MpModel, PpModel, Sign};
use ppgnn_nn::{metrics, Adam, CrossEntropyLoss, Mode, Optimizer};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let paper = DatasetProfile::igb_large_sim();
    let spec = server();
    let hops = 3;
    println!("## Table 5 — igb-large: storage-resident training\n");

    // --- functional plane: real training from the on-disk store ---
    let profile = paper.scaled(0.05);
    let (_, prep) = prepared(profile, hops, 42);
    let dir = std::env::temp_dir().join(format!("ppgnn-t5-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    prep.write_store(&dir, profile.name, 256)
        .expect("store written");

    let mut rows = Vec::new();
    let f = profile.feature_dim;
    let c = profile.num_classes;
    let mut rng = StdRng::seed_from_u64(6);
    let mut entries: Vec<(&str, Box<dyn PpModel>)> = vec![
        ("SIGN", Box::new(Sign::new(hops, f, 48, c, 0.1, &mut rng))),
        (
            "HOGA",
            Box::new(Hoga::new(hops, f, 48, 4, c, 0.1, &mut rng)),
        ),
    ];
    for (name, model) in entries.iter_mut() {
        // Train 6 epochs *from disk* with chunk reshuffling.
        let store = FeatureStore::open(&dir).expect("store reopens");
        let mut loader =
            StorageChunkLoader::new(store, prep.train.labels.clone(), 256, AccessPath::Direct, 3);
        let mut opt = Adam::new(3e-3);
        for _ in 0..6 {
            loader.start_epoch();
            while let Some(batch) = loader.next_batch() {
                let logits = model.forward(&batch.hops, Mode::Train);
                let (_, grad) = CrossEntropyLoss.loss_and_grad(&logits, &batch.labels);
                model.zero_grad();
                model.backward(&grad);
                opt.step(&mut model.params());
            }
            // The storage loader parks I/O errors instead of panicking; a
            // silently truncated epoch would corrupt the table's numbers.
            if let Some(err) = loader.take_error() {
                panic!("storage loader failed mid-epoch: {err}");
            }
        }
        let logits = model.forward(&prep.test.hops, Mode::Eval);
        let acc = metrics::accuracy(&logits, &prep.test.labels);
        let io = loader.io_counters();

        // paper-scale throughput: GDS chunked reads
        let w = paper_pp_workload(&paper, model.as_ref());
        let t = pp_epoch(&spec, &w, LoaderGen::ChunkReshuffle, Placement::Ssd).epoch_time;
        rows.push(vec![
            name.to_string(),
            "Ours (GDS+CR)".into(),
            format!("{:.1}", 100.0 * acc),
            format!("{:.1}", 3600.0 / t),
            format!("{} seq / {} rand reads", io.seq_requests, io.rand_requests),
        ]);
    }

    // --- MP baselines: storage-based systems, simulated ---
    let probe = SynthDataset::generate(paper.scaled(0.1), 1).expect("generation succeeds");
    let mut sampler = make_sampler("neighbor", hops, 2);
    let sage: Box<dyn MpModel> = Box::new(make_sage(hops, &profile, 2));
    let mp_w = measured_mp_workload(&paper, &probe, sampler.as_mut(), sage.as_ref(), 3);
    for (system, label) in [
        (
            MpSystem::Storage {
                cache_hit_rate: 0.3,
            },
            "SAGE (DGL-mmap)",
        ),
        (
            MpSystem::Storage {
                cache_hit_rate: 0.7,
            },
            "SAGE (Ginex)",
        ),
    ] {
        let t = mp_epoch(&spec, &mp_w, system).epoch_time;
        rows.push(vec![
            "SAGE".into(),
            label.into(),
            "-".into(),
            format!("{:.2}", 3600.0 / t),
            "-".into(),
        ]);
    }
    print_markdown_table(
        &[
            "model",
            "system",
            "test acc % (analog)",
            "epoch/hour (paper scale)",
            "io pattern",
        ],
        &rows,
    );
    std::fs::remove_dir_all(&dir).ok();
    println!("\nshape check: chunked GDS PP-GNNs reach order-of-magnitude higher");
    println!("storage-resident throughput than sampling-based systems (paper: up to 42x),");
    println!("and the real storage path issues zero random reads.");
}
