//! Table 1: asymptotic training-memory and computational-cost comparison,
//! evaluated at the paper's nominal parameters.
//!
//! Run with: `cargo run --release -p ppgnn-bench --bin exp_table1`

use ppgnn_bench::print_markdown_table;
use ppgnn_models::complexity::{Approach, CostModel, CostParams};

fn main() {
    println!("## Table 1 — complexity comparison (L = 3, b = 8000, C = 10, F = 128, n = 2.4M)\n");
    let p = CostParams {
        layers: 3,
        batch: 8000,
        fanout: 10,
        feature_dim: 128,
        num_nodes: 2_400_000,
    };
    let m = CostModel;
    let rows: Vec<Vec<String>> = Approach::all()
        .iter()
        .map(|&a| {
            let mem = m.training_memory(a, p);
            let cost = m.computational_cost(a, p);
            vec![
                a.name().to_string(),
                if a.is_pp() { "PP".into() } else { "MP".into() },
                format!("{:.2e}", mem as f64),
                format!("{:.2e}", cost.propagation as f64),
                format!("{:.2e}", cost.transformation as f64),
                format!("{:.2e}", cost.total() as f64),
            ]
        })
        .collect();
    print_markdown_table(
        &[
            "model",
            "family",
            "train memory",
            "propagation (red)",
            "transformation (blue)",
            "total compute",
        ],
        &rows,
    );

    println!("\n## Depth scaling (total compute, normalized to L = 2)\n");
    let rows: Vec<Vec<String>> = Approach::all()
        .iter()
        .map(|&a| {
            let at = |l: usize| {
                let mut q = p;
                q.layers = l;
                m.computational_cost(a, q).total() as f64
            };
            let base = at(2);
            vec![
                a.name().to_string(),
                format!("{:.1}x", at(3) / base),
                format!("{:.1}x", at(4) / base),
                format!("{:.1}x", at(5) / base),
                format!("{:.1}x", at(6) / base),
            ]
        })
        .collect();
    print_markdown_table(&["model", "L=3", "L=4", "L=5", "L=6"], &rows);
    println!("\nshape check: node-wise samplers (GraphSAGE/LABOR) explode exponentially;");
    println!("PP-GNNs and graph-wise samplers grow linearly; SGC is depth-free.");
}
