//! Extension ablation: the operator/kernel dimension of Eq. 2.
//!
//! The paper's evaluation fixes `K = 1` (normalized adjacency) and notes
//! SIGN also supports PPR/heat kernels. This ablation measures, for real:
//! accuracy of each single operator, the multi-kernel combinations, and the
//! input-expansion price (`K(R+1)×`) each choice pays — plus preprocessing
//! cost (diffusion operators need a truncated series per hop).
//!
//! Run with: `cargo run --release -p ppgnn-bench --bin exp_ablation_operators`

use ppgnn_bench::exp::{pp_config, BATCH};
use ppgnn_bench::{print_markdown_table, HARNESS_SCALE};
use ppgnn_core::preprocess::Preprocessor;
use ppgnn_core::trainer::{LoaderKind, Trainer};
use ppgnn_graph::synth::{DatasetProfile, SynthDataset};
use ppgnn_graph::Operator;
use ppgnn_models::Sign;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let hops = 3;
    println!("## Ablation — pre-propagation operators (SIGN, {hops} hops, real training)\n");
    let configs: Vec<(&str, Vec<Operator>)> = vec![
        ("adj (paper default)", vec![Operator::SymNorm]),
        ("random-walk", vec![Operator::RowNorm]),
        ("ppr(0.15)", vec![Operator::Ppr { alpha: 0.15 }]),
        ("heat(3.0)", vec![Operator::Heat { t: 3.0 }]),
        (
            "adj+ppr (K=2)",
            vec![Operator::SymNorm, Operator::Ppr { alpha: 0.15 }],
        ),
        (
            "adj+ppr+heat (K=3)",
            vec![
                Operator::SymNorm,
                Operator::Ppr { alpha: 0.15 },
                Operator::Heat { t: 3.0 },
            ],
        ),
    ];
    for profile in [DatasetProfile::pokec_sim(), DatasetProfile::wiki_sim()] {
        let profile = ppgnn_bench::harness_profile(profile, HARNESS_SCALE);
        let data = SynthDataset::generate(profile, 42).expect("generation succeeds");
        println!("### {}\n", profile.name);
        let mut rows = Vec::new();
        for (name, ops) in &configs {
            let k = ops.len();
            let prep = Preprocessor::new(ops.clone(), hops).run(&data);
            let mut rng = StdRng::seed_from_u64(31);
            // branch input width = K·F after hop-wise concatenation
            let mut model = Sign::new(
                hops,
                profile.feature_dim * k,
                48,
                profile.num_classes,
                0.1,
                &mut rng,
            );
            let mut trainer = Trainer::new(pp_config(12, LoaderKind::Chunk { chunk_size: BATCH }));
            let report = trainer.fit(&mut model, &prep).expect("training runs");
            rows.push(vec![
                name.to_string(),
                k.to_string(),
                format!("{:.1}", 100.0 * report.test_acc),
                format!("{:.1}x", prep.expansion.factor()),
                format!("{:.2}s", prep.preprocess_seconds),
            ]);
        }
        print_markdown_table(
            &[
                "operator set",
                "K",
                "test acc %",
                "input expansion",
                "preproc time",
            ],
            &rows,
        );
        println!();
    }
    println!("shape check: diffusion kernels are competitive with the plain adjacency;");
    println!("multi-kernel buys (at most) small accuracy at K× the input expansion and");
    println!("a diffusion-series preprocessing premium — why the paper's evaluation");
    println!("settles on K = 1.");
}
