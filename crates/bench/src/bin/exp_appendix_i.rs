//! Appendix I: data-transfer analysis — total bytes moved per epoch by
//! PP-GNNs (hop-count arithmetic) versus MP-GNNs (measured sampler
//! statistics, no caching), at paper scale.
//!
//! Run with: `cargo run --release -p ppgnn-bench --bin exp_appendix_i`

use ppgnn_bench::exp::{make_sampler, BATCH};
use ppgnn_bench::{print_markdown_table, HARNESS_SCALE};
use ppgnn_graph::synth::{DatasetProfile, SynthDataset};
use ppgnn_sampler::SampleStats;

fn main() {
    let hops = 3;
    println!("## Appendix I — per-epoch data transfer, paper scale (PP vs MP, no caching)\n");
    let mut rows = Vec::new();
    for profile in DatasetProfile::all_profiles() {
        // Measure sampler expansion on the analog graph.
        let data =
            SynthDataset::generate(profile.scaled(HARNESS_SCALE), 1).expect("generation succeeds");
        let mut sampler = make_sampler("neighbor", hops, 1);
        let mut stats = SampleStats::default();
        let probes = 4;
        for b in 0..probes {
            let seeds: Vec<usize> = (0..BATCH)
                .map(|i| (b * BATCH + i) % data.graph.num_nodes())
                .collect();
            stats.accumulate(&sampler.sample(&data.graph, &seeds).stats);
        }
        let expansion = stats.expansion_factor();

        // Paper-scale volumes.
        let n_train = (profile.paper.num_nodes as f64 * profile.paper.labeled_frac) as u64;
        let f_bytes = profile.paper.feature_dim as u64 * 4;
        let pp_bytes = n_train * (hops as u64 + 1) * f_bytes;
        let mp_bytes = (n_train as f64 * expansion) as u64 * f_bytes;
        rows.push(vec![
            profile.name.to_string(),
            format!("{:.1}x", expansion),
            format!("{:.1} GB", pp_bytes as f64 / 1e9),
            format!("{:.1} GB", mp_bytes as f64 / 1e9),
            format!("{:.1}x", mp_bytes as f64 / pp_bytes as f64),
        ]);
    }
    print_markdown_table(
        &[
            "dataset",
            "measured neighbor expansion",
            "PP transfer/epoch",
            "MP transfer/epoch",
            "MP / PP",
        ],
        &rows,
    );
    println!("\nshape check: MP-GNNs move an order of magnitude more bytes than PP-GNNs");
    println!("(paper: 8x–111x depending on dataset), because sampled subgraphs overlap");
    println!("across batches while PP-GNN rows are touched exactly once per epoch.");
}
