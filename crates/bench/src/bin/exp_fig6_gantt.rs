//! Figure 6: pipeline schematics of the four loader generations, rendered
//! as Gantt charts from the actual simulated schedules (first 4 batches).
//!
//! Run with: `cargo run --release -p ppgnn-bench --bin exp_fig6_gantt`

use ppgnn_bench::exp::server;
use ppgnn_memsim::trace::gantt;
use ppgnn_memsim::{pp_epoch, LoaderGen, Placement, PpWorkload};

fn main() {
    let spec = server();
    // A small workload so four batches fill the chart.
    let w = PpWorkload {
        num_train: 32_000,
        batch_size: 8000,
        row_bytes: 4 * 128 * 4,
        flops_per_example: 3_000_000,
        chunk_size: 2000,
        param_bytes: 4 << 20,
    };
    println!("## Figure 6 — loader pipeline schedules (4 batches, host-resident input)\n");
    for gen in LoaderGen::all() {
        let rep = pp_epoch(&spec, &w, gen, Placement::Host);
        println!(
            "### ({}) {} — epoch {:.4}s\n",
            label(gen),
            gen.name(),
            rep.epoch_time
        );
        println!("{}", gantt(&rep.schedule, 100));
    }
    println!("### (e) chunk reshuffling from SSD (GPUDirect) — Section 4.3\n");
    let rep = pp_epoch(&spec, &w, LoaderGen::ChunkReshuffle, Placement::Ssd);
    println!(
        "epoch {:.4}s\n{}",
        rep.epoch_time,
        gantt(&rep.schedule, 100)
    );
    println!("shape check: (a) serial per-sample assembly; (b) shorter host phase;");
    println!("(c) transfer/compute overlap; (d) host idle, GPU-side assembly.");
}

fn label(gen: LoaderGen) -> &'static str {
    match gen {
        LoaderGen::Baseline => "a",
        LoaderGen::FusedGather => "b",
        LoaderGen::DoubleBuffer => "c",
        LoaderGen::ChunkReshuffle => "d",
    }
}
