//! Extension ablation: hardware-parameter sensitivity of the headline
//! speedups. Perturbs one simulator knob at a time and reports how the
//! Figure 9 total (baseline / chunk-reshuffle epoch time) responds —
//! showing *which mechanism* each optimization removes.
//!
//! Run with: `cargo run --release -p ppgnn-bench --bin exp_ablation_hardware`

use ppgnn_bench::print_markdown_table;
use ppgnn_memsim::{pp_epoch, HardwareSpec, LoaderGen, Placement, PpWorkload};

fn workload() -> PpWorkload {
    // wiki-like: loading-dominated (F = 600, 4 hop matrices)
    PpWorkload {
        num_train: 960_000,
        batch_size: 8000,
        row_bytes: 4 * 600 * 4,
        flops_per_example: 14_000_000,
        chunk_size: 8000,
        param_bytes: 4 << 20,
    }
}

fn total_speedup(spec: &HardwareSpec) -> f64 {
    let w = workload();
    let base = pp_epoch(spec, &w, LoaderGen::Baseline, Placement::Host).epoch_time;
    let chunk = pp_epoch(spec, &w, LoaderGen::ChunkReshuffle, Placement::Host).epoch_time;
    base / chunk
}

fn main() {
    println!("## Ablation — hardware sensitivity of the loader-stack speedup\n");
    println!("(wiki-like workload, host placement; entries = baseline/chunk epoch ratio)\n");
    let nominal = HardwareSpec::a6000_server();
    let mut rows = vec![vec![
        "nominal A6000 server".to_string(),
        format!("{:.1}x", total_speedup(&nominal)),
        "-".into(),
    ]];

    let knobs: Vec<(&str, Box<dyn Fn(&mut HardwareSpec)>, &str)> = vec![
        (
            "per-sample overhead x4 (slow framework)",
            Box::new(|s: &mut HardwareSpec| s.per_sample_overhead *= 4.0),
            "baseline pays per-row costs → stack gains grow",
        ),
        (
            "per-sample overhead /4 (lean framework)",
            Box::new(|s: &mut HardwareSpec| s.per_sample_overhead /= 4.0),
            "less launch waste to recover → gains shrink",
        ),
        (
            "host gather bw x4 (better DRAM)",
            Box::new(|s: &mut HardwareSpec| s.host_gather_bw *= 4.0),
            "host assembly cheap → chunk reshuffle matters less",
        ),
        (
            "pcie bw /2 (PCIe 3.0)",
            Box::new(|s: &mut HardwareSpec| s.pcie_bw /= 2.0),
            "transfer-bound tail → all loaders converge to link speed",
        ),
        (
            "gpu flops /8 (small GPU)",
            Box::new(|s: &mut HardwareSpec| s.gpu_flops /= 8.0),
            "compute-bound → loading optimizations buy little",
        ),
        (
            "gpu flops x8 (H100-class)",
            Box::new(|s: &mut HardwareSpec| s.gpu_flops *= 8.0),
            "compute vanishes → loading is everything",
        ),
    ];
    for (name, mutate, why) in &knobs {
        let mut spec = nominal;
        mutate(&mut spec);
        rows.push(vec![
            name.to_string(),
            format!("{:.1}x", total_speedup(&spec)),
            why.to_string(),
        ]);
    }
    print_markdown_table(
        &["hardware variant", "total speedup", "mechanism exposed"],
        &rows,
    );
    println!("\nreading: the paper's 15x lives in the gap between per-sample framework");
    println!("overheads + strided host gathers and the bulk-transfer path; faster GPUs");
    println!("*increase* the value of the loading optimizations, slower ones mute them.");
}
