//! Table 3: ogbn-papers100M — test accuracy (real training on the analog)
//! and training throughput for 1/2/4 GPUs (simulated at paper scale).
//!
//! Run with: `cargo run --release -p ppgnn-bench --bin exp_table3`

use ppgnn_bench::exp::{
    make_sage, make_sampler, measured_mp_workload, paper_pp_workload, server, train_mp, train_pp,
};
use ppgnn_bench::{prepared, print_markdown_table};
use ppgnn_core::trainer::LoaderKind;
use ppgnn_graph::synth::{DatasetProfile, SynthDataset};
use ppgnn_memsim::{mp_epoch, multigpu, LoaderGen, MpSystem, Placement};
use ppgnn_models::{Hoga, MpModel, PpModel, Sign};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let paper = DatasetProfile::papers100m_sim();
    let spec = server();
    println!(
        "## Table 3 — papers100M: accuracy (real, analog) + throughput (simulated, epoch/s)\n"
    );
    let mut rows = Vec::new();
    for hops in [2usize, 3, 4] {
        let profile = paper;
        let (data, prep) = prepared(profile, hops, 42);

        // --- MP baseline: SAGE + LABOR (DGL row of the table) ---
        let mut sage = make_sage(hops, &profile, 5);
        let mut sampler = make_sampler("labor", hops, 5);
        let sage_rep = train_mp(&mut sage, sampler.as_mut(), &data, 15);
        let probe = SynthDataset::generate(paper.scaled(0.8), 1).expect("generation succeeds");
        let mut probe_sampler = make_sampler("labor", hops, 6);
        let mp_model: Box<dyn MpModel> = Box::new(make_sage(hops, &profile, 5));
        let mp_w =
            measured_mp_workload(&paper, &probe, probe_sampler.as_mut(), mp_model.as_ref(), 3);
        let sage_tput = 1.0 / mp_epoch(&spec, &mp_w, MpSystem::Uva).epoch_time;
        rows.push(vec![
            hops.to_string(),
            "SAGE (DGL-UVA)".into(),
            format!("{:.1}", 100.0 * sage_rep.test_acc),
            format!("{sage_tput:.2}"),
            "-".into(),
            "-".into(),
        ]);

        // --- PP models: GPU placement (input fits after retention) ---
        let f = profile.feature_dim;
        let c = profile.num_classes;
        let mut rng = StdRng::seed_from_u64(8);
        let mut entries: Vec<(&str, Box<dyn PpModel>)> = vec![
            ("SIGN", Box::new(Sign::new(hops, f, 64, c, 0.1, &mut rng))),
            (
                "HOGA",
                Box::new(Hoga::new(hops, f, 64, 4, c, 0.1, &mut rng)),
            ),
        ];
        for (name, model) in entries.iter_mut() {
            let rep = train_pp(model.as_mut(), &prep, 15, LoaderKind::DoubleBuffer);
            let w = paper_pp_workload(&paper, model.as_ref());
            let tput = |gpus: usize| {
                1.0 / multigpu::multi_gpu_epoch(
                    &spec,
                    &w,
                    LoaderGen::DoubleBuffer,
                    Placement::Gpu,
                    gpus,
                )
                .epoch_time
            };
            rows.push(vec![
                hops.to_string(),
                name.to_string(),
                format!("{:.1}", 100.0 * rep.test_acc),
                format!("{:.2}", tput(1)),
                format!("{:.2}", tput(2)),
                format!("{:.2}", tput(4)),
            ]);
        }
    }
    print_markdown_table(
        &[
            "hops/layers",
            "model",
            "test acc %",
            "1 GPU",
            "2 GPUs",
            "4 GPUs",
        ],
        &rows,
    );
    println!("\nshape check: PP-GNN accuracy ≥ SAGE; SIGN throughput ≫ SAGE (paper: up to");
    println!("41x on one GPU, 156x on four); near-linear PP scaling from GPU-resident data.");
}
