//! Figure 9: ablation of the data-loading optimizations — normalized epoch
//! time for the four loader generations, per dataset × model, geometric
//! mean over hops 2–6. Simulated at paper scale with host-resident input.
//!
//! Run with: `cargo run --release -p ppgnn-bench --bin exp_fig9`

use ppgnn_bench::exp::server;
use ppgnn_bench::{geomean, print_markdown_table};
use ppgnn_graph::synth::DatasetProfile;
use ppgnn_memsim::{pp_epoch, LoaderGen, Placement, PpWorkload};
use ppgnn_models::{Hoga, PpModel, Sgc, Sign};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let spec = server();
    println!("## Figure 9 — loader ablation, normalized epoch time (geomean over hops 2–6)\n");
    let mut rows = Vec::new();
    let mut stage_speedups: Vec<[f64; 3]> = Vec::new();
    for profile in DatasetProfile::medium_profiles() {
        for model_name in ["HOGA", "SIGN", "SGC"] {
            let mut per_gen: Vec<Vec<f64>> = vec![Vec::new(); 4];
            for hops in 2..=6usize {
                let mut rng = StdRng::seed_from_u64(1);
                let f = profile.feature_dim;
                let c = profile.num_classes;
                let model: Box<dyn PpModel> = match model_name {
                    "HOGA" => Box::new(Hoga::new(hops, f, 256, 4, c, 0.0, &mut rng)),
                    "SIGN" => Box::new(Sign::new(hops, f, 512, c, 0.0, &mut rng)),
                    _ => Box::new(Sgc::new(hops, f, c, &mut rng)),
                };
                let w = PpWorkload {
                    num_train: (profile.paper.num_nodes as f64 * profile.paper.labeled_frac)
                        as usize,
                    batch_size: 8000,
                    row_bytes: (hops as u64 + 1) * profile.paper.feature_dim as u64 * 4,
                    flops_per_example: model.flops_per_example(),
                    chunk_size: 8000,
                    param_bytes: 4 << 20,
                };
                for (i, gen) in LoaderGen::all().iter().enumerate() {
                    per_gen[i].push(pp_epoch(&spec, &w, *gen, Placement::Host).epoch_time);
                }
            }
            let g: Vec<f64> = per_gen.iter().map(|v| geomean(v)).collect();
            rows.push(vec![
                format!("{}-{}", &profile.name[..1].to_uppercase(), model_name),
                "1.00".to_string(),
                format!("{:.2}", g[1] / g[0]),
                format!("{:.2}", g[2] / g[0]),
                format!("{:.2}", g[3] / g[0]),
            ]);
            stage_speedups.push([g[0] / g[1], g[1] / g[2], g[2] / g[3]]);
        }
    }
    print_markdown_table(
        &[
            "dataset-model",
            "baseline",
            "+fused assembly",
            "+double buffer",
            "+chunk reshuffle",
        ],
        &rows,
    );
    let s1 = geomean(&stage_speedups.iter().map(|s| s[0]).collect::<Vec<_>>());
    let s2 = geomean(&stage_speedups.iter().map(|s| s[1]).collect::<Vec<_>>());
    let s3 = geomean(&stage_speedups.iter().map(|s| s[2]).collect::<Vec<_>>());
    println!("\ngeomean stage speedups: fused {s1:.1}x, +double-buffer {s2:.1}x, +chunk {s3:.1}x");
    println!(
        "total {:.1}x (paper: 3.3x · 1.9x · 2.4x = 15x)",
        s1 * s2 * s3
    );
}
