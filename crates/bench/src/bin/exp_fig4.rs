//! Figure 4: epoch-time comparison of *unoptimized* PP-GNN baselines
//! against DGL-optimized GraphSAGE (vanilla / UVA / preload) at paper
//! scale. Sampler statistics are measured on the sim graph; times come
//! from the hardware simulator.
//!
//! Run with: `cargo run --release -p ppgnn-bench --bin exp_fig4`

use ppgnn_bench::exp::{make_sage, make_sampler, measured_mp_workload, paper_pp_workload, server};
use ppgnn_bench::print_markdown_table;
use ppgnn_graph::synth::{DatasetProfile, SynthDataset};
use ppgnn_memsim::{mp_epoch, pp_epoch, LoaderGen, MpSystem, Placement};
use ppgnn_models::{Hoga, MpModel, Sgc, Sign};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    println!("## Figure 4 — epoch time (s), 3-layer/hop, paper scale (simulated)\n");
    let spec = server();
    let depth = 3;
    let mut rows = Vec::new();
    for profile in DatasetProfile::medium_profiles() {
        let scaled = profile.scaled(0.5);
        let data = SynthDataset::generate(scaled, 1).expect("generation succeeds");

        // Measured LABOR statistics drive the MP workload.
        let mut sampler = make_sampler("labor", depth, 5);
        let sage: Box<dyn MpModel> = Box::new(make_sage(depth, &scaled, 5));
        let mp = measured_mp_workload(&profile, &data, sampler.as_mut(), sage.as_ref(), 4);

        let vanilla = mp_epoch(&spec, &mp, MpSystem::VanillaCpu).epoch_time;
        let uva = mp_epoch(&spec, &mp, MpSystem::Uva).epoch_time;
        let preload = mp_epoch(&spec, &mp, MpSystem::Preload).epoch_time;

        // PP-GNN *baseline* loaders (the Figure 4 setting: vanilla PyTorch
        // DataLoader, host-resident input).
        let mut rng = StdRng::seed_from_u64(9);
        let f = profile.feature_dim;
        let c = profile.num_classes;
        let hoga = Hoga::new(depth, f, 256, 4, c, 0.0, &mut rng);
        let sign = Sign::new(depth, f, 512, c, 0.0, &mut rng);
        let sgc = Sgc::new(depth, f, c, &mut rng);
        let pp_time = |m: &dyn ppgnn_models::PpModel| {
            pp_epoch(
                &spec,
                &paper_pp_workload(&profile, m),
                LoaderGen::Baseline,
                Placement::Host,
            )
            .epoch_time
        };

        rows.push(vec![
            profile.name.to_string(),
            format!("{vanilla:.2}"),
            format!("{uva:.2}"),
            format!("{preload:.2}"),
            format!("{:.2}", pp_time(&hoga)),
            format!("{:.2}", pp_time(&sign)),
            format!("{:.2}", pp_time(&sgc)),
        ]);
    }
    print_markdown_table(
        &[
            "dataset",
            "SAGE-Vanilla",
            "SAGE-UVA",
            "SAGE-Preload",
            "HOGA",
            "SIGN",
            "SGC",
        ],
        &rows,
    );
    println!("\nshape check: DGL optimizations give order-of-magnitude gains over vanilla");
    println!("sampling, and *unoptimized* PP-GNN loaders do not beat SAGE-Preload —");
    println!("the paper's motivation for Section 4.");
}
