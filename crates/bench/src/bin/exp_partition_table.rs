//! Partition balance table: how the partition-parallel preprocessing
//! pipeline (`ppgnn-partition`) cuts a skewed graph — rows, local nnz,
//! ghost rows (the per-hop exchange volume), training rows, and
//! per-partition store bytes — for both partitioner strategies, plus the
//! partitioned-vs-whole-graph wall-clock comparison.
//!
//! `PPGNN_NUM_PARTITIONS` overrides the default partition counts.
//!
//! Run with: `cargo run --release -p ppgnn-bench --bin exp_partition_table`

use ppgnn_bench::{print_markdown_table, HARNESS_SCALE};
use ppgnn_core::preprocess::Preprocessor;
use ppgnn_graph::synth::{DatasetProfile, SynthDataset};
use ppgnn_graph::{BfsGrowPartitioner, Operator, Partitioner, RangeCutPartitioner};
use ppgnn_tensor::knobs;

fn main() {
    let data = SynthDataset::generate(DatasetProfile::pokec_sim().scaled(HARNESS_SCALE), 42)
        .expect("generation succeeds");
    let prep = Preprocessor::new(vec![Operator::SymNorm, Operator::RowNorm], 3);
    let reference = prep.run(&data);

    // Clamped through the registry like every other consumer — the
    // pre-registry read here accepted any usize, including 0.
    let env_parts = knobs::usize_value(knobs::NUM_PARTITIONS);
    let part_counts: Vec<usize> = env_parts.map(|p| vec![p]).unwrap_or_else(|| vec![2, 4]);

    println!("## Partition balance — pokec-sim, K=2 (sym + rw), R=3\n");
    println!(
        "whole-graph preprocessing: {:.3}s ({} train rows)\n",
        reference.preprocess_seconds,
        reference.train.len()
    );

    let partitioners: [&dyn Partitioner; 2] = [&RangeCutPartitioner, &BfsGrowPartitioner];
    for partitioner in partitioners {
        for &parts in &part_counts {
            let dir = std::env::temp_dir().join(format!(
                "ppgnn-exp-partition-{}-{parts}-{}",
                partitioner.name(),
                std::process::id()
            ));
            let _ = std::fs::remove_dir_all(&dir);
            let (out, _store) = prep
                .clone()
                .with_num_partitions(parts)
                .run_with_sharded_store_using(
                    &data,
                    partitioner,
                    &dir,
                    "pokec-sim",
                    256,
                    ppgnn_tensor::pool(),
                )
                .expect("partitioned preprocessing succeeds");
            println!(
                "### {} @ P={parts} — {:.3}s ({:.2}x vs whole-graph), {} ghost rows/hop\n",
                partitioner.name(),
                out.preprocess_seconds,
                reference.preprocess_seconds / out.preprocess_seconds.max(f64::EPSILON),
                out.expansion
                    .partitions
                    .iter()
                    .map(|s| s.ghost_rows)
                    .sum::<usize>(),
            );
            let total_nnz: usize = out.expansion.partitions.iter().map(|s| s.nnz).sum();
            let rows: Vec<Vec<String>> = out
                .expansion
                .partitions
                .iter()
                .map(|s| {
                    vec![
                        s.partition.to_string(),
                        s.rows.to_string(),
                        format!(
                            "{} ({:.1}%)",
                            s.nnz,
                            100.0 * s.nnz as f64 / total_nnz as f64
                        ),
                        format!(
                            "{} ({:.1}% of rows)",
                            s.ghost_rows,
                            100.0 * s.ghost_rows as f64 / s.rows.max(1) as f64
                        ),
                        s.train_rows.to_string(),
                        format!("{:.2} MB", s.store_bytes as f64 / 1e6),
                    ]
                })
                .collect();
            print_markdown_table(
                &[
                    "partition",
                    "rows",
                    "nnz (share)",
                    "ghost rows (overhead)",
                    "train rows",
                    "store bytes",
                ],
                &rows,
            );
            println!();
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
    println!("ghost rows are the per-hop exchange volume a multi-machine run would move");
    println!("over the network; nnz share is the compute balance the cut achieved.");
}
