//! Dense-kernel throughput benchmarks: the packed, cache-blocked GEMM
//! micro-kernels vs the retained naive reference, plus the column-tiled
//! SpMM — the compute roofline of post-preprocessing PP-GNN training
//! (the training step is an MLP over `K·(R+1)·F` columns, so once I/O is
//! overlapped these kernels *are* the epoch time).
//!
//! Besides the criterion groups, this bench writes a machine-readable
//! `BENCH_gemm.json` artifact: GFLOP/s for all three GEMM variants at the
//! trainer-realistic shape `4096 × (K·(R+1)·F) × 256` (K=2, R=3, F=64 →
//! k=512), the same numbers for the pre-change reference kernels, their
//! speedups, per-backend throughput for every supported micro-kernel
//! (`gflops_kernel_*`), the batched small-GEMM speedup on a HOGA-shaped
//! per-head workload (`speedup_batched_small_gemm`), the autotuner's
//! winning `{kernel, kc, nc}` (`tuned_*`), and SpMM rows/s. CI runs the
//! smoke variant, uploads the artifact alongside `BENCH_preprop.json`,
//! and gates on the packed-vs-reference and batched-vs-looped *speedup*
//! ratios against the committed baseline (see
//! `scripts/check_gemm_regression.py` for the per-ratio tolerances;
//! absolute GFLOP/s is informational since it tracks runner hardware).
//! Destination overridable via `PPGNN_GEMM_BENCH_ARTIFACT`;
//! `PPGNN_BENCH_SMOKE=1` reduces repetitions.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Instant;

use ppgnn_graph::{gen, WeightedCsr};
use ppgnn_tensor::{
    block, compiled_kernels, init, knobs, matmul, matmul_batched_into, matmul_nt, matmul_tn,
    reference, tune, Matrix,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Trainer-realistic GEMM shape: a 4096-row batch of `K·(R+1)·F` hop
/// features (K=2 operators, R=3 hops, F=64) against a 256-wide hidden
/// layer.
const TRAINER_M: usize = 4096;
const TRAINER_K: usize = 2 * (3 + 1) * 64;
const TRAINER_N: usize = 256;

fn bench_gemm_variants(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(7);
    // A smaller cut of the trainer shape keeps the criterion group (and
    // its `cargo test` smoke run) quick; the artifact writer below
    // measures the full shape.
    let m = 1024;
    let a = init::standard_normal(m, TRAINER_K, &mut rng);
    let b = init::standard_normal(TRAINER_K, TRAINER_N, &mut rng);
    let at = a.transpose();
    let bt = b.transpose();

    let mut group = c.benchmark_group("gemm-trainer-shape");
    group.sample_size(10);
    group.bench_function("packed-nn", |bch| {
        bch.iter(|| black_box(matmul(&a, &b)));
    });
    group.bench_function("packed-tn", |bch| {
        bch.iter(|| black_box(matmul_tn(&at, &b)));
    });
    group.bench_function("packed-nt", |bch| {
        bch.iter(|| black_box(matmul_nt(&a, &bt)));
    });
    group.bench_function("reference-nn", |bch| {
        bch.iter(|| black_box(reference::matmul(&a, &b)));
    });
    group.bench_function("reference-tn", |bch| {
        bch.iter(|| black_box(reference::matmul_tn(&at, &b)));
    });
    group.bench_function("reference-nt", |bch| {
        bch.iter(|| black_box(reference::matmul_nt(&a, &bt)));
    });
    group.finish();

    write_gemm_artifact();
}

/// Best-of-`reps` wall time of `f`, after one warm-up call.
fn best_seconds(reps: usize, mut f: impl FnMut()) -> f64 {
    f();
    let mut best = f64::MAX;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

/// Measures the full trainer-shape GEMMs and SpMM directly (independent
/// of the criterion shim) and writes `BENCH_gemm.json`.
fn write_gemm_artifact() {
    // Only write when actually measuring (`cargo bench` passes `--bench`)
    // or when a destination was explicitly requested; under `cargo test`
    // the bench bodies run once as smoke tests and skip this.
    let measuring = std::env::args().any(|a| a == "--bench");
    if !measuring && !knobs::is_set(knobs::GEMM_BENCH_ARTIFACT) {
        return;
    }
    let smoke = knobs::flag(knobs::BENCH_SMOKE);
    // Even smoke mode keeps 3 best-of reps: the CI gate consumes these
    // numbers, and best-of-2 on a shared runner lets one descheduling
    // burst inflate a single measurement past the gate's tolerance.
    let reps = if smoke { 3 } else { 5 };
    let (m, k, n) = (TRAINER_M, TRAINER_K, TRAINER_N);
    let mut rng = StdRng::seed_from_u64(11);
    let a = init::standard_normal(m, k, &mut rng);
    let b = init::standard_normal(k, n, &mut rng);
    let at = a.transpose();
    let bt = b.transpose();
    let gflop = 2.0 * m as f64 * n as f64 * k as f64 / 1e9;

    let gflops = |secs: f64| gflop / secs.max(f64::EPSILON);
    let nn = gflops(best_seconds(reps, || {
        black_box(matmul(black_box(&a), black_box(&b)));
    }));
    let tn = gflops(best_seconds(reps, || {
        black_box(matmul_tn(black_box(&at), black_box(&b)));
    }));
    let nt = gflops(best_seconds(reps, || {
        black_box(matmul_nt(black_box(&a), black_box(&bt)));
    }));
    let nn_ref = gflops(best_seconds(reps, || {
        black_box(reference::matmul(black_box(&a), black_box(&b)));
    }));
    let tn_ref = gflops(best_seconds(reps, || {
        black_box(reference::matmul_tn(black_box(&at), black_box(&b)));
    }));
    let nt_ref = gflops(best_seconds(reps, || {
        black_box(reference::matmul_nt(black_box(&a), black_box(&bt)));
    }));

    // Per-backend throughput of the nn variant at the trainer shape:
    // every compiled-in micro-kernel this host can run, forced via
    // `block::set_kernel` (the dispatch default is whichever is widest).
    let mut kernel_rows = String::new();
    for &kind in compiled_kernels() {
        if !kind.is_supported() {
            continue;
        }
        block::set_kernel(Some(kind));
        let g = gflops(best_seconds(reps, || {
            black_box(matmul(black_box(&a), black_box(&b)));
        }));
        kernel_rows.push_str(&format!("  \"gflops_kernel_{}\": {:.4},\n", kind.name(), g));
    }
    block::set_kernel(None);

    // Batched small-GEMM path on a HOGA-shaped per-head workload: many
    // tiny same-shape multiplies, looped allocating `matmul` vs one
    // `matmul_batched_into` submission with preallocated outputs.
    let (bh, bm, bk, bn) = (16usize, 64usize, 64usize, 64usize);
    let ba: Vec<Matrix> = (0..bh)
        .map(|_| init::standard_normal(bm, bk, &mut rng))
        .collect();
    let bb: Vec<Matrix> = (0..bh)
        .map(|_| init::standard_normal(bk, bn, &mut rng))
        .collect();
    let mut bc: Vec<Matrix> = (0..bh).map(|_| Matrix::zeros(bm, bn)).collect();
    let batched_flop = 2.0 * bh as f64 * bm as f64 * bk as f64 * bn as f64 / 1e9;
    let batched_reps = reps * 20; // sub-ms per call; amortize timer noise
    let looped_s = best_seconds(batched_reps, || {
        for (ah, bhm) in ba.iter().zip(&bb) {
            black_box(matmul(black_box(ah), black_box(bhm)));
        }
    });
    let batched_s = best_seconds(batched_reps, || {
        matmul_batched_into(black_box(&ba), black_box(&bb), &mut bc);
        black_box(&bc);
    });
    let batched_looped = batched_flop / looped_s.max(f64::EPSILON);
    let batched = batched_flop / batched_s.max(f64::EPSILON);

    // One-shot autotune sweep: the {kernel, KC, NC} this machine would
    // pick when `PPGNN_TUNE_CACHE` is active (restores knobs itself).
    let tuned = tune::run_sweep();

    // SpMM throughput on a preprocessing-like workload: mean-degree-16
    // random graph, 128-wide features (wide enough to exercise the
    // column tiling).
    let spmm_nodes = 50_000;
    let g = gen::erdos_renyi(spmm_nodes, 16.0, &mut rng).expect("generation succeeds");
    let op = WeightedCsr::sym_norm(&g, true);
    let x = init::standard_normal(spmm_nodes, 128, &mut rng);
    let mut y = Matrix::zeros(spmm_nodes, 128);
    let spmm_secs = best_seconds(reps, || {
        op.spmm_into(black_box(&x), &mut y);
        black_box(&y);
    });
    let spmm_rows_per_s = spmm_nodes as f64 / spmm_secs.max(f64::EPSILON);

    // One extra instrumented rep so the artifact carries the GEMM/SpMM
    // dispatch counters (madds, per-backend dispatch counts).
    let telemetry = {
        ppgnn_telemetry::reset_metrics();
        ppgnn_telemetry::reset_trace();
        ppgnn_telemetry::set_enabled(true);
        black_box(matmul(black_box(&a), black_box(&b)));
        op.spmm_into(black_box(&x), &mut y);
        black_box(&y);
        ppgnn_telemetry::set_enabled(false);
        ppgnn_telemetry::reset_trace();
        ppgnn_telemetry::metrics_json("  ")
    };

    let threads = ppgnn_tensor::pool().num_threads();
    let json = format!(
        concat!(
            "{{\n",
            "  \"shape_m\": {},\n",
            "  \"shape_k\": {},\n",
            "  \"shape_n\": {},\n",
            "  \"threads\": {},\n",
            "  \"kernel\": \"{}\",\n",
            "  \"gemm_block_kc\": {},\n",
            "  \"gemm_block_nc\": {},\n",
            "  \"smoke\": {},\n",
            "  \"gflops_matmul\": {:.4},\n",
            "  \"gflops_matmul_tn\": {:.4},\n",
            "  \"gflops_matmul_nt\": {:.4},\n",
            "  \"gflops_matmul_ref\": {:.4},\n",
            "  \"gflops_matmul_tn_ref\": {:.4},\n",
            "  \"gflops_matmul_nt_ref\": {:.4},\n",
            "  \"speedup_matmul\": {:.4},\n",
            "  \"speedup_matmul_tn\": {:.4},\n",
            "  \"speedup_matmul_nt\": {:.4},\n",
            "{}",
            "  \"batched_heads\": {},\n",
            "  \"batched_m\": {},\n",
            "  \"batched_k\": {},\n",
            "  \"batched_n\": {},\n",
            "  \"gflops_batched_small_gemm_looped\": {:.4},\n",
            "  \"gflops_batched_small_gemm\": {:.4},\n",
            "  \"speedup_batched_small_gemm\": {:.4},\n",
            "  \"tuned_kernel\": \"{}\",\n",
            "  \"tuned_kc\": {},\n",
            "  \"tuned_nc\": {},\n",
            "  \"tuned_gflops\": {:.4},\n",
            "  \"spmm_nodes\": {},\n",
            "  \"spmm_feature_dim\": 128,\n",
            "  \"spmm_rows_per_s\": {:.1},\n",
            "  \"telemetry\": {}\n",
            "}}\n"
        ),
        m,
        k,
        n,
        threads,
        block::kernel().name(),
        block::kc(),
        block::nc(),
        smoke,
        nn,
        tn,
        nt,
        nn_ref,
        tn_ref,
        nt_ref,
        nn / nn_ref.max(f64::EPSILON),
        tn / tn_ref.max(f64::EPSILON),
        nt / nt_ref.max(f64::EPSILON),
        kernel_rows,
        bh,
        bm,
        bk,
        bn,
        batched_looped,
        batched,
        batched / batched_looped.max(f64::EPSILON),
        tuned.kernel.name(),
        tuned.kc,
        tuned.nc,
        tuned.gflops,
        spmm_nodes,
        spmm_rows_per_s,
        telemetry.trim_start(),
    );
    let path = knobs::string_value(knobs::GEMM_BENCH_ARTIFACT)
        .unwrap_or_else(|| "BENCH_gemm.json".to_string());
    if let Err(e) = std::fs::write(&path, json) {
        eprintln!("warning: could not write {path}: {e}");
    } else {
        println!("wrote GEMM kernel artifact to {path}");
    }
}

criterion_group!(benches, bench_gemm_variants);
criterion_main!(benches);
