//! Real-time benchmarks of the loader generations: one full epoch of batch
//! assembly per generation over identical data — the CPU-measured analog of
//! the Figure 9 ablation.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;

use ppgnn_bench::MICRO_SCALE;
use ppgnn_core::loader::{
    BaselineLoader, ChunkReshuffleLoader, DoubleBufferLoader, FusedGatherLoader, Loader,
};
use ppgnn_core::preprocess::{Preprocessor, PrepropFeatures};
use ppgnn_graph::synth::{DatasetProfile, SynthDataset};
use ppgnn_graph::Operator;

fn partition() -> Arc<PrepropFeatures> {
    let data = SynthDataset::generate(DatasetProfile::pokec_sim().scaled(MICRO_SCALE), 0)
        .expect("generation succeeds");
    let prep = Preprocessor::new(vec![Operator::SymNorm], 3).run(&data);
    Arc::new(prep.train)
}

fn drain(loader: &mut dyn Loader) -> usize {
    loader.start_epoch();
    let mut batches = 0;
    while let Some(b) = loader.next_batch() {
        black_box(&b);
        batches += 1;
    }
    batches
}

fn bench_loader_epoch(c: &mut Criterion) {
    let data = partition();
    const BATCH: usize = 128;
    let mut group = c.benchmark_group("loader-epoch");
    group.sample_size(10);
    group.bench_function("gen0-baseline", |b| {
        let mut l = BaselineLoader::new(data.clone(), BATCH, 1);
        b.iter(|| black_box(drain(&mut l)));
    });
    group.bench_function("gen1-fused", |b| {
        let mut l = FusedGatherLoader::new(data.clone(), BATCH, 1);
        b.iter(|| black_box(drain(&mut l)));
    });
    group.bench_function("gen2-double-buffer", |b| {
        let mut l = DoubleBufferLoader::new(data.clone(), BATCH, 1);
        b.iter(|| black_box(drain(&mut l)));
    });
    group.bench_function("gen3-chunk-reshuffle", |b| {
        let mut l = ChunkReshuffleLoader::new(data.clone(), BATCH, BATCH, 1);
        b.iter(|| black_box(drain(&mut l)));
    });
    group.finish();
}

criterion_group!(benches, bench_loader_epoch);
criterion_main!(benches);
