//! Sampler throughput benchmarks: the per-batch cost of each sampling
//! algorithm on a products-like graph (the MP-GNN bottleneck of
//! Section 2.4).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use ppgnn_bench::MICRO_SCALE;
use ppgnn_graph::synth::{DatasetProfile, SynthDataset};
use ppgnn_sampler::{LaborSampler, LadiesSampler, NeighborSampler, SaintNodeSampler, Sampler};

fn bench_samplers(c: &mut Criterion) {
    let data = SynthDataset::generate(DatasetProfile::products_sim().scaled(MICRO_SCALE), 0)
        .expect("generation succeeds");
    let seeds: Vec<usize> = (0..256).collect();
    let mut group = c.benchmark_group("sampler-batch");
    group.sample_size(20);

    group.bench_function("neighbor-15-10-5", |b| {
        let mut s = NeighborSampler::new(vec![15, 10, 5], 1);
        b.iter(|| black_box(s.sample(&data.graph, &seeds)));
    });
    group.bench_function("labor-15-10-5", |b| {
        let mut s = LaborSampler::new(vec![15, 10, 5], 1);
        b.iter(|| black_box(s.sample(&data.graph, &seeds)));
    });
    group.bench_function("ladies-512", |b| {
        let mut s = LadiesSampler::new(3, 512, 1);
        b.iter(|| black_box(s.sample(&data.graph, &seeds)));
    });
    group.bench_function("saint-node-512", |b| {
        let mut s = SaintNodeSampler::new(3, 512, 1);
        b.iter(|| black_box(s.sample(&data.graph, &seeds)));
    });
    group.finish();
}

criterion_group!(benches, bench_samplers);
criterion_main!(benches);
