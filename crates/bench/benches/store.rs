//! Compressed feature-store benchmarks: encode/decode throughput, epoch
//! read time, and on-disk footprint for every [`StoreDtype`], plus the
//! accuracy drift that quantized hop features cost on the exp_table
//! training harness.
//!
//! Besides the criterion groups, this bench writes a machine-readable
//! `BENCH_store.json` artifact with, per dtype: physical bytes per row,
//! the logical/physical compression ratio (exact — derived from the
//! format, not timed), steady-state decode throughput, the wall time of
//! one full epoch-shaped pass over an on-disk store
//! (`read_chunk_all_hops_into` over every chunk), and the test-accuracy
//! drift of a SIGN model trained on quantized hop features against the
//! lossless f32 run (seeded end to end, so the drift is deterministic).
//! CI runs the smoke variant, uploads the artifact alongside
//! `BENCH_gemm.json`, and gates on the compression ratios and the
//! accuracy drift against the committed baseline (see
//! `scripts/check_store_regression.py`; throughput numbers are
//! informational since they track runner hardware). Destination
//! overridable via `PPGNN_STORE_BENCH_ARTIFACT`; `PPGNN_BENCH_SMOKE=1`
//! reduces repetitions and training epochs.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Instant;

use ppgnn_bench::exp::{pp_config, ACC_EPOCHS};
use ppgnn_bench::prepared;
use ppgnn_core::preprocess::PrepropOutput;
use ppgnn_core::trainer::{LoaderKind, Trainer};
use ppgnn_dataio::{AccessPath, FeatureStoreWriter, StoreMeta};
use ppgnn_graph::synth::DatasetProfile;
use ppgnn_models::Sign;
use ppgnn_tensor::{cast, knobs, Matrix, StoreDtype};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Decode-bench shape: one chunk of trainer-realistic hop features
/// (256 rows of `K·(R+1)·F` columns at K=2, R=3, F=64).
const DECODE_ROWS: usize = 256;
const DECODE_COLS: usize = 2 * (3 + 1) * 64;

fn seeded_rows(rows: usize, cols: usize, seed: u64) -> Vec<f32> {
    let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(99);
    (0..rows * cols)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (((state >> 33) as f32 / (1u64 << 31) as f32) - 0.5) * 4.0
        })
        .collect()
}

fn bench_store_dtypes(c: &mut Criterion) {
    let src = seeded_rows(DECODE_ROWS, DECODE_COLS, 7);
    let mut group = c.benchmark_group("store-decode-chunk");
    group.sample_size(10);
    for dtype in StoreDtype::ALL {
        let mut enc = vec![0u8; DECODE_ROWS * dtype.encoded_row_bytes(DECODE_COLS)];
        cast::encode_rows(dtype, &src, DECODE_COLS, &mut enc);
        let mut dec = vec![0.0f32; src.len()];
        group.bench_function(dtype.name(), |bch| {
            bch.iter(|| {
                cast::decode_rows(dtype, black_box(&enc), DECODE_COLS, &mut dec);
                black_box(&dec);
            });
        });
    }
    group.finish();

    write_store_artifact();
}

/// Best-of-`reps` wall time of `f`, after one warm-up call.
fn best_seconds(reps: usize, mut f: impl FnMut()) -> f64 {
    f();
    let mut best = f64::MAX;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

/// Round-trips every training hop matrix through `dtype` — the features a
/// model trained from a compressed store actually sees.
fn quantized(prep: &PrepropOutput, dtype: StoreDtype) -> PrepropOutput {
    let mut out = prep.clone();
    for hop in &mut out.train.hops {
        let (rows, cols) = hop.shape();
        let mut enc = vec![0u8; rows * dtype.encoded_row_bytes(cols)];
        cast::encode_rows(dtype, hop.as_slice(), cols, &mut enc);
        cast::decode_rows(dtype, &enc, cols, hop.as_mut_slice());
    }
    out
}

/// Test accuracy of a fresh seeded SIGN model on `prep` — the exp_table
/// accuracy harness at its default settings.
fn sign_test_acc(prep: &PrepropOutput, epochs: usize) -> f64 {
    let hops = prep.train.hops.len() - 1;
    let f = prep.train.hops[0].cols();
    let classes = 1 + prep.train.labels.iter().copied().max().unwrap_or(0) as usize;
    let mut model = Sign::new(hops, f, 48, classes, 0.1, &mut StdRng::seed_from_u64(4));
    let mut t = Trainer::new(pp_config(epochs, LoaderKind::Chunk { chunk_size: 256 }));
    t.fit(&mut model, prep)
        .expect("training partition is non-empty")
        .test_acc
}

/// Measures every dtype against the shared fixture and writes
/// `BENCH_store.json`.
fn write_store_artifact() {
    // Only write when actually measuring (`cargo bench` passes `--bench`)
    // or when a destination was explicitly requested; under `cargo test`
    // the bench bodies run once as smoke tests and skip this.
    let measuring = std::env::args().any(|a| a == "--bench");
    if !measuring && !knobs::is_set(knobs::STORE_BENCH_ARTIFACT) {
        return;
    }
    let smoke = knobs::flag(knobs::BENCH_SMOKE);
    let reps = if smoke { 3 } else { 5 };
    // Accuracy drift needs enough epochs to converge past init noise;
    // smoke halves the budget rather than gutting it, since the drift
    // rows are gated.
    let epochs = if smoke { ACC_EPOCHS / 2 } else { ACC_EPOCHS };

    // The exp_table fixture: pokec-sim at harness scale, R = 2 hops.
    let (_, prep) = prepared(DatasetProfile::pokec_sim().scaled(0.05), 2, 42);
    let rows = prep.train.len();
    let cols = prep.train.hops[0].cols();
    let num_hops = prep.train.hops.len();
    let chunk_size = 256usize;
    let acc_f32 = sign_test_acc(&prep, epochs);

    // Decode throughput fixture (pure kernel, no I/O).
    let dec_src = seeded_rows(8 * DECODE_ROWS, DECODE_COLS, 11);
    let dec_rows = 8 * DECODE_ROWS;

    let base = std::env::temp_dir().join(format!("ppgnn-bench-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);

    let mut per_dtype = String::new();
    let mut telemetry = String::from("null");
    for dtype in StoreDtype::ALL {
        // Footprint: exact, from the format.
        let bytes_per_row = dtype.encoded_row_bytes(cols);
        let ratio = (cols * 4) as f64 / bytes_per_row as f64;

        // Kernel decode throughput on the fixture buffer.
        let mut enc = vec![0u8; dec_rows * dtype.encoded_row_bytes(DECODE_COLS)];
        cast::encode_rows(dtype, &dec_src, DECODE_COLS, &mut enc);
        let mut dec = vec![0.0f32; dec_src.len()];
        let dec_s = best_seconds(reps * 4, || {
            cast::decode_rows(dtype, black_box(&enc), DECODE_COLS, &mut dec);
            black_box(&dec);
        });
        let decode_rows_per_s = dec_rows as f64 / dec_s.max(f64::EPSILON);

        // Epoch-shaped pass over a real on-disk store: every chunk of
        // every hop through the zero-alloc refill path.
        let dir = base.join(dtype.name());
        let meta = StoreMeta {
            dataset: "bench".into(),
            num_hops,
            rows,
            cols,
            chunk_size,
            dtype,
        };
        let mut w = FeatureStoreWriter::create(&dir, meta).expect("bench store created");
        for (k, hop) in prep.train.hops.iter().enumerate() {
            w.write_hop(k, hop).expect("bench hop written");
        }
        let mut store = w.finish().expect("bench store finished");
        let num_chunks = store.meta().num_chunks();
        let mut slots: Vec<Matrix> = Vec::new();
        let epoch_s = best_seconds(reps, || {
            for chunk in 0..num_chunks {
                store
                    .read_chunk_all_hops_into(chunk, AccessPath::Direct, &mut slots)
                    .expect("bench chunk read");
            }
            black_box(&slots);
        });
        let physical_mb = store.meta().physical_bytes() as f64 / 1e6;

        // One extra instrumented epoch pass on the lossless store (outside
        // the timed best-of runs) so the artifact carries the store's byte
        // counters alongside the wall-clock numbers.
        if dtype.is_f32() {
            ppgnn_telemetry::reset_metrics();
            ppgnn_telemetry::reset_trace();
            ppgnn_telemetry::set_enabled(true);
            for chunk in 0..num_chunks {
                store
                    .read_chunk_all_hops_into(chunk, AccessPath::Direct, &mut slots)
                    .expect("bench chunk read");
            }
            ppgnn_telemetry::set_enabled(false);
            ppgnn_telemetry::reset_trace();
            telemetry = ppgnn_telemetry::metrics_json("  ");
        }

        // Accuracy drift of training on round-tripped features, in
        // percentage points against the lossless run.
        let acc = if dtype.is_f32() {
            acc_f32
        } else {
            sign_test_acc(&quantized(&prep, dtype), epochs)
        };
        let drift_pt = (acc_f32 - acc) * 100.0;

        let d = dtype.name();
        per_dtype.push_str(&format!(
            concat!(
                "  \"bytes_per_row_{}\": {},\n",
                "  \"compression_ratio_{}\": {:.4},\n",
                "  \"decode_mrows_per_s_{}\": {:.4},\n",
                "  \"epoch_seconds_{}\": {:.6},\n",
                "  \"epoch_physical_mb_{}\": {:.3},\n",
                "  \"acc_{}\": {:.4},\n",
                "  \"acc_drift_pt_{}\": {:.4},\n",
            ),
            d,
            bytes_per_row,
            d,
            ratio,
            d,
            decode_rows_per_s / 1e6,
            d,
            epoch_s,
            d,
            physical_mb,
            d,
            acc,
            d,
            drift_pt,
        ));
    }
    let _ = std::fs::remove_dir_all(&base);

    let json = format!(
        concat!(
            "{{\n",
            "  \"rows\": {},\n",
            "  \"cols\": {},\n",
            "  \"num_hops\": {},\n",
            "  \"chunk_size\": {},\n",
            "  \"train_epochs\": {},\n",
            "  \"threads\": {},\n",
            "  \"cast_backend\": \"{}\",\n",
            "  \"smoke\": {},\n",
            "{}",
            "  \"acc_baseline_f32\": {:.4},\n",
            "  \"telemetry\": {}\n",
            "}}\n"
        ),
        rows,
        cols,
        num_hops,
        chunk_size,
        epochs,
        ppgnn_tensor::pool().num_threads(),
        cast::active_backend_name(),
        smoke,
        per_dtype,
        acc_f32,
        telemetry.trim_start(),
    );
    let path = knobs::string_value(knobs::STORE_BENCH_ARTIFACT)
        .unwrap_or_else(|| "BENCH_store.json".to_string());
    if let Err(e) = std::fs::write(&path, json) {
        eprintln!("warning: could not write {path}: {e}");
    } else {
        println!("wrote store artifact to {path}");
    }
}

criterion_group!(benches, bench_store_dtypes);
criterion_main!(benches);
