//! Micro-benchmarks of the kernels behind the paper's mechanisms:
//! batch-assembly gathers (per-row vs fused vs contiguous-chunk), GEMM,
//! and SpMM (the preprocessing kernel).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use ppgnn_graph::{gen, WeightedCsr};
use ppgnn_tensor::{init, matmul, Matrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-row copy vs fused gather vs contiguous chunk copy — the Section 4
/// batch-assembly hierarchy measured on real memory.
fn bench_gather(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0);
    let n = 100_000;
    let f = 128;
    let table = init::standard_normal(n, f, &mut rng);
    let batch = 4096;
    let random_idx: Vec<usize> = (0..batch).map(|_| rng.random_range(0..n)).collect();
    let chunk_start = 40_000;

    let mut group = c.benchmark_group("batch-assembly");
    group.bench_function("per-row-copies", |b| {
        let mut out = Matrix::zeros(batch, f);
        b.iter(|| {
            for (k, &i) in random_idx.iter().enumerate() {
                out.row_mut(k).copy_from_slice(table.row(i));
            }
            black_box(&out);
        });
    });
    group.bench_function("fused-gather", |b| {
        let mut out = Matrix::zeros(batch, f);
        b.iter(|| {
            table.gather_rows_into(&random_idx, &mut out);
            black_box(&out);
        });
    });
    group.bench_function("contiguous-chunk", |b| {
        b.iter(|| {
            let out = table.slice_rows(chunk_start, chunk_start + batch);
            black_box(out);
        });
    });
    group.finish();
}

fn bench_gemm(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let mut group = c.benchmark_group("gemm");
    for &dim in &[64usize, 256] {
        let a = init::standard_normal(512, dim, &mut rng);
        let b_mat = init::standard_normal(dim, dim, &mut rng);
        group.bench_with_input(BenchmarkId::new("512xDxD", dim), &dim, |bch, _| {
            bch.iter(|| black_box(matmul(&a, &b_mat)));
        });
    }
    group.finish();
}

fn bench_spmm(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let g = gen::erdos_renyi(20_000, 16.0, &mut rng).expect("generation succeeds");
    let op = WeightedCsr::sym_norm(&g, true);
    let x = init::standard_normal(20_000, 64, &mut rng);
    c.bench_function("spmm-20k-deg16-f64", |b| {
        b.iter(|| black_box(op.spmm(&x)));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_gather, bench_gemm, bench_spmm
}
criterion_main!(benches);
