//! End-to-end pipeline benchmarks: preprocessing (SpMM chain) and one
//! training step per PP-GNN model — the real-compute quantities behind the
//! Figure 5 breakdown.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use ppgnn_bench::{pp_models, MICRO_SCALE};
use ppgnn_core::preprocess::Preprocessor;
use ppgnn_graph::synth::{DatasetProfile, SynthDataset};
use ppgnn_graph::Operator;
use ppgnn_nn::{CrossEntropyLoss, Mode};
use ppgnn_tensor::Matrix;

fn bench_preprocess(c: &mut Criterion) {
    let data = SynthDataset::generate(DatasetProfile::pokec_sim().scaled(MICRO_SCALE), 0)
        .expect("generation succeeds");
    let mut group = c.benchmark_group("preprocess");
    group.sample_size(10);
    group.bench_function("sym-norm-3-hops", |b| {
        let prep = Preprocessor::new(vec![Operator::SymNorm], 3);
        b.iter(|| black_box(prep.run(&data)));
    });
    group.bench_function("ppr-3-hops", |b| {
        let prep = Preprocessor::new(vec![Operator::Ppr { alpha: 0.15 }], 3);
        b.iter(|| black_box(prep.run(&data)));
    });
    group.finish();
}

fn bench_train_step(c: &mut Criterion) {
    let profile = DatasetProfile::pokec_sim().scaled(MICRO_SCALE);
    let data = SynthDataset::generate(profile, 0).expect("generation succeeds");
    let prep = Preprocessor::new(vec![Operator::SymNorm], 3).run(&data);
    let batch: Vec<Matrix> = prep
        .train
        .hops
        .iter()
        .map(|h| h.slice_rows(0, 256))
        .collect();
    let labels: Vec<u32> = prep.train.labels[..256].to_vec();

    let mut group = c.benchmark_group("train-step-256");
    group.sample_size(20);
    for (name, mut model) in pp_models(3, profile.feature_dim, profile.num_classes, 64, 1) {
        group.bench_function(name, |b| {
            b.iter(|| {
                let logits = model.forward(&batch, Mode::Train);
                let (_, grad) = CrossEntropyLoss.loss_and_grad(&logits, &labels);
                model.zero_grad();
                model.backward(&grad);
                black_box(&model);
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_preprocess, bench_train_step);
criterion_main!(benches);
