//! End-to-end pipeline benchmarks: preprocessing (SpMM chain) and one
//! training step per PP-GNN model — the real-compute quantities behind the
//! Figure 5 breakdown.
//!
//! Besides the criterion groups, this bench emits a machine-readable
//! `BENCH_preprop.json` artifact (preprocess seconds + bytes moved for the
//! paper's K=2, R=3 pokec configuration, shard-scheduled, sequential,
//! **and** graph-partitioned with ghost-row exchange, so both the sharding
//! and partition speedups are tracked explicitly) so CI can follow the
//! pre-propagation perf trajectory across PRs. Destination overridable via
//! `PPGNN_BENCH_ARTIFACT`; `PPGNN_BENCH_SMOKE=1` reduces repetitions;
//! `PPGNN_NUM_PARTITIONS` (default 2) sets the partitioned run's `P`.
//! One extra instrumented rep embeds the telemetry counter/histogram
//! readout as the artifact's `telemetry` section.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use ppgnn_bench::{pp_models, MICRO_SCALE};
use ppgnn_core::preprocess::Preprocessor;
use ppgnn_graph::synth::{DatasetProfile, SynthDataset};
use ppgnn_graph::Operator;
use ppgnn_nn::{CrossEntropyLoss, Mode};
use ppgnn_tensor::{knobs, Matrix};

fn bench_preprocess(c: &mut Criterion) {
    let data = SynthDataset::generate(DatasetProfile::pokec_sim().scaled(MICRO_SCALE), 0)
        .expect("generation succeeds");
    let mut group = c.benchmark_group("preprocess");
    group.sample_size(10);
    group.bench_function("sym-norm-3-hops", |b| {
        let prep = Preprocessor::new(vec![Operator::SymNorm], 3);
        b.iter(|| black_box(prep.run(&data)));
    });
    group.bench_function("ppr-3-hops", |b| {
        let prep = Preprocessor::new(vec![Operator::Ppr { alpha: 0.15 }], 3);
        b.iter(|| black_box(prep.run(&data)));
    });
    group.finish();
}

/// The acceptance-criterion configuration: pokec_sim, K=2 operators, R=3
/// hops — one full streaming pre-propagation per iteration, at a scale
/// where the SpMM work crosses the parallel threshold and exercises the
/// worker pool.
fn bench_preprocess_k2_r3(c: &mut Criterion) {
    let data = SynthDataset::generate(DatasetProfile::pokec_sim().scaled(0.25), 0)
        .expect("generation succeeds");
    let num_shards = ppgnn_tensor::pool().num_threads().max(2);
    let sharded = Preprocessor::new(vec![Operator::SymNorm, Operator::RowNorm], 3)
        .with_num_shards(num_shards);
    let sequential =
        Preprocessor::new(vec![Operator::SymNorm, Operator::RowNorm], 3).with_num_shards(1);
    let num_partitions = knobs::usize_value(knobs::NUM_PARTITIONS).unwrap_or(2);
    let partitioned = Preprocessor::new(vec![Operator::SymNorm, Operator::RowNorm], 3)
        .with_num_partitions(num_partitions);
    let mut group = c.benchmark_group("preprocess");
    group.sample_size(10);
    group.bench_function("pokec-k2-r3-sharded", |b| {
        b.iter(|| black_box(sharded.run(&data)));
    });
    group.bench_function("pokec-k2-r3-sequential", |b| {
        b.iter(|| black_box(sequential.run(&data)));
    });
    group.bench_function("pokec-k2-r3-partitioned", |b| {
        b.iter(|| black_box(partitioned.run_partitioned(&data)));
    });
    group.finish();

    write_preprop_artifact(
        &data,
        &sharded,
        &sequential,
        &partitioned,
        num_shards,
        num_partitions,
    );
}

/// Measures the K=2/R=3 pre-propagation directly (independent of the
/// criterion shim) — sharding on vs off vs graph-partitioned — and writes
/// `BENCH_preprop.json`.
fn write_preprop_artifact(
    data: &SynthDataset,
    sharded: &Preprocessor,
    sequential: &Preprocessor,
    partitioned: &Preprocessor,
    num_shards: usize,
    num_partitions: usize,
) {
    // Under `cargo test` the bench bodies run once as smoke tests; only
    // write the artifact when actually measuring (`cargo bench` passes
    // `--bench`) or when a destination was explicitly requested.
    let measuring = std::env::args().any(|a| a == "--bench");
    if !measuring && !knobs::is_set(knobs::BENCH_ARTIFACT) {
        return;
    }
    let smoke = knobs::flag(knobs::BENCH_SMOKE);
    let reps = if smoke { 1 } else { 3 };
    let best_of = |prep: &Preprocessor| {
        let mut seconds = f64::MAX;
        let mut out = prep.run(data); // warm-up + a measurable output
        for _ in 0..reps {
            let run = prep.run(data);
            seconds = seconds.min(run.preprocess_seconds);
            out = run;
        }
        (seconds, out)
    };
    let (sequential_seconds, _) = best_of(sequential);
    let (sharded_seconds, out) = best_of(sharded);
    // The partitioned pipeline (ghost-row exchange over disjoint node
    // partitions) measured through its own entry point.
    let best_partitioned = |prep: &Preprocessor| {
        let mut seconds = f64::MAX;
        let mut run = prep.run_partitioned(data); // warm-up
        for _ in 0..reps {
            run = prep.run_partitioned(data);
            seconds = seconds.min(run.preprocess_seconds);
        }
        (seconds, run)
    };
    let (partitioned_seconds, part_out) = best_partitioned(partitioned);
    // One extra instrumented rep (outside the timed best-of runs) so the
    // artifact carries the pipeline's counter/histogram readout.
    let telemetry = {
        ppgnn_telemetry::reset_metrics();
        ppgnn_telemetry::reset_trace();
        ppgnn_telemetry::set_enabled(true);
        black_box(sharded.run(data));
        ppgnn_telemetry::set_enabled(false);
        ppgnn_telemetry::reset_trace();
        ppgnn_telemetry::metrics_json("  ")
    };
    let ghost_rows: usize = part_out
        .expansion
        .partitions
        .iter()
        .map(|s| s.ghost_rows)
        .sum();
    // Bytes the preprocessing stage moves: the propagated hop features it
    // produces (the expansion quantity of Section 3.4), plus the SpMM read
    // traffic over the feature matrix per invocation.
    let n = data.graph.num_nodes() as u64;
    let f = data.features.cols() as u64;
    let spmm_bytes = sharded.total_spmm_invocations() as u64 * 2 * n * f * 4;
    let output_bytes = out.train.size_bytes() + out.val.size_bytes() + out.test.size_bytes();
    let threads = ppgnn_tensor::pool().num_threads();
    let json = format!(
        concat!(
            "{{\n",
            "  \"profile\": \"pokec_sim\",\n",
            "  \"num_operators\": {},\n",
            "  \"hops\": {},\n",
            "  \"num_nodes\": {},\n",
            "  \"threads\": {},\n",
            "  \"num_shards\": {},\n",
            "  \"num_partitions\": {},\n",
            "  \"smoke\": {},\n",
            "  \"preprocess_seconds\": {:.6},\n",
            "  \"preprocess_seconds_sequential\": {:.6},\n",
            "  \"sharding_speedup\": {:.4},\n",
            "  \"partitioned_seconds\": {:.6},\n",
            "  \"partition_speedup\": {:.4},\n",
            "  \"ghost_rows_per_hop\": {},\n",
            "  \"output_bytes\": {},\n",
            "  \"spmm_traffic_bytes\": {},\n",
            "  \"telemetry\": {}\n",
            "}}\n"
        ),
        sharded.operators().len(),
        sharded.hops(),
        n,
        threads,
        num_shards,
        num_partitions,
        smoke,
        sharded_seconds,
        sequential_seconds,
        sequential_seconds / sharded_seconds.max(f64::EPSILON),
        partitioned_seconds,
        sequential_seconds / partitioned_seconds.max(f64::EPSILON),
        ghost_rows,
        output_bytes,
        spmm_bytes,
        telemetry.trim_start(),
    );
    let path = knobs::string_value(knobs::BENCH_ARTIFACT)
        .unwrap_or_else(|| "BENCH_preprop.json".to_string());
    if let Err(e) = std::fs::write(&path, json) {
        eprintln!("warning: could not write {path}: {e}");
    } else {
        println!("wrote pre-propagation artifact to {path}");
    }
}

fn bench_train_step(c: &mut Criterion) {
    let profile = DatasetProfile::pokec_sim().scaled(MICRO_SCALE);
    let data = SynthDataset::generate(profile, 0).expect("generation succeeds");
    let prep = Preprocessor::new(vec![Operator::SymNorm], 3).run(&data);
    let batch: Vec<Matrix> = prep
        .train
        .hops
        .iter()
        .map(|h| h.slice_rows(0, 256))
        .collect();
    let labels: Vec<u32> = prep.train.labels[..256].to_vec();

    let mut group = c.benchmark_group("train-step-256");
    group.sample_size(20);
    for (name, mut model) in pp_models(3, profile.feature_dim, profile.num_classes, 64, 1) {
        group.bench_function(name, |b| {
            b.iter(|| {
                let logits = model.forward(&batch, Mode::Train);
                let (_, grad) = CrossEntropyLoss.loss_and_grad(&logits, &labels);
                model.zero_grad();
                model.backward(&grad);
                black_box(&model);
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_preprocess,
    bench_preprocess_k2_r3,
    bench_train_step
);
criterion_main!(benches);
