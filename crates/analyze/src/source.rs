//! Raw-source-line facilities: `// SAFETY:` comment detection and the
//! `// ppgnn-analyze: allow(<lint>)` escape hatch.
//!
//! The vendored lexer treats comments as trivia, so everything
//! comment-shaped is resolved here against the original text. Line
//! numbers are 1-based throughout, matching `proc_macro2::Span`.

/// A source file's lines plus its parsed escape-hatch annotations.
pub struct SourceText {
    lines: Vec<String>,
    /// `(line, lint)` pairs for each `ppgnn-analyze: allow(…)` comment.
    allows: Vec<(usize, String)>,
}

impl SourceText {
    /// Splits `src` and records every escape-hatch annotation.
    pub fn new(src: &str) -> SourceText {
        let lines: Vec<String> = src.lines().map(|l| l.to_string()).collect();
        let mut allows = Vec::new();
        for (i, line) in lines.iter().enumerate() {
            // Only honor the marker inside a line comment: an
            // annotation mentioned in a string (like the ones in the
            // linter's own tests) is not an escape hatch.
            let mut rest = line_comment_tail(line);
            while let Some(pos) = rest.find("ppgnn-analyze: allow(") {
                let args = &rest[pos + "ppgnn-analyze: allow(".len()..];
                if let Some(end) = args.find(')') {
                    for name in args[..end].split(',') {
                        allows.push((i + 1, name.trim().to_string()));
                    }
                    rest = &args[end..];
                } else {
                    break;
                }
            }
        }
        SourceText { lines, allows }
    }

    /// The 1-based line `n`, or `""` past the end.
    pub fn line(&self, n: usize) -> &str {
        n.checked_sub(1)
            .and_then(|i| self.lines.get(i))
            .map(|s| s.as_str())
            .unwrap_or("")
    }

    /// Whether an `allow(lint)` annotation sits on `line` itself or in
    /// the contiguous comment block directly above it (so multi-line
    /// justification comments work).
    pub fn allowed_at(&self, lint: &str, line: usize) -> bool {
        if self.allows.iter().any(|(l, n)| n == lint && *l == line) {
            return true;
        }
        self.allowed_above_item(lint, line)
    }

    /// Whether the contiguous comment/attribute block directly above
    /// `line` (doc comments included) carries an `allow(lint)` for the
    /// whole item.
    pub fn allowed_above_item(&self, lint: &str, line: usize) -> bool {
        self.comment_block_above(line)
            .any(|l| self.allows.iter().any(|(al, n)| *al == l && n == lint))
    }

    /// Whether the unsafe site starting at `line` is justified: the
    /// line itself carries a trailing `// SAFETY:` comment, or the
    /// contiguous comment/attribute block above it contains `SAFETY:`
    /// or a `# Safety` doc section.
    pub fn has_safety_doc(&self, line: usize) -> bool {
        if line_comment_tail(self.line(line)).contains("SAFETY:") {
            return true;
        }
        self.comment_block_above(line).any(|l| {
            let t = self.line(l).trim_start();
            t.contains("SAFETY:") || t.contains("# Safety")
        })
    }

    /// 1-based line numbers of the contiguous comment / attribute block
    /// directly above `line`, nearest first.
    fn comment_block_above(&self, line: usize) -> impl Iterator<Item = usize> + '_ {
        let mut l = line;
        std::iter::from_fn(move || {
            if l <= 1 {
                return None;
            }
            l -= 1;
            let t = self.line(l).trim_start();
            let is_comment_or_attr = t.starts_with("//")
                || t.starts_with("#[")
                || t.starts_with("#![")
                // Tail lines of a multi-line attribute.
                || (t.ends_with(")]") && !t.starts_with('}'));
            is_comment_or_attr.then_some(l)
        })
    }
}

/// The comment tail of a line (everything from the first `//` that is
/// not inside a string literal — approximated by requiring the `//` to
/// follow an even number of unescaped quotes).
fn line_comment_tail(line: &str) -> &str {
    let mut quotes = 0usize;
    let bytes = line.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 1,
            b'"' => quotes += 1,
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' && quotes.is_multiple_of(2) => {
                return &line[i..];
            }
            _ => {}
        }
        i += 1;
    }
    ""
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allow_annotations_parse_with_spans() {
        let s = SourceText::new(
            "fn a() {}\n// ppgnn-analyze: allow(unwrap) -- justified\nlet x = y.unwrap();\n",
        );
        assert!(s.allowed_at("unwrap", 2));
        assert!(s.allowed_at("unwrap", 3)); // line directly below
        assert!(!s.allowed_at("unwrap", 1));
        assert!(!s.allowed_at("hot_path_alloc", 3));
    }

    #[test]
    fn allow_in_string_literal_is_ignored() {
        let s = SourceText::new("let m = \"// ppgnn-analyze: allow(unwrap)\";\n");
        assert!(!s.allowed_at("unwrap", 1));
        assert!(!s.allowed_at("unwrap", 2));
    }

    #[test]
    fn safety_comments_and_doc_sections_are_found() {
        let s = SourceText::new(
            "// SAFETY: bounds checked above\nunsafe { go() }\n\nunsafe { nope() }\nlet x = 1; // SAFETY: trailing\n",
        );
        assert!(s.has_safety_doc(2));
        assert!(!s.has_safety_doc(4));
        assert!(s.has_safety_doc(5));

        let d = SourceText::new(
            "/// Does things.\n///\n/// # Safety\n///\n/// Caller upholds X.\n#[inline]\nunsafe fn f() {}\n",
        );
        assert!(d.has_safety_doc(7));
    }

    #[test]
    fn comment_block_stops_at_code_and_blank_lines() {
        let s = SourceText::new("// SAFETY: far away\n\nunsafe { x() }\n");
        assert!(!s.has_safety_doc(3));
        let s = SourceText::new("let a = 1;\n// no marker here\nunsafe { x() }\n");
        assert!(!s.has_safety_doc(3));
    }
}
