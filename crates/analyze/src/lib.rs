//! `ppgnn-analyze` — workspace invariant linter for the ppgnn repo.
//!
//! Six lints run over every first-party `.rs` file (vendored shims
//! excluded):
//!
//! 1. `safety_comment` — every `unsafe` block / fn / impl / trait
//!    carries a `// SAFETY:` comment or `# Safety` doc section.
//! 2. `env_knob` — every `env::var("PPGNN_*")` read goes through the
//!    central [`ppgnn_tensor::knobs`] registry.
//! 3. `hot_path_alloc` — configured hot-path functions contain no
//!    allocating calls (`Matrix::zeros`, `vec![…]`, `Vec::new`,
//!    `.clone()`, `.to_vec()`).
//! 4. `unfused_fma` — no bare `a * b + c` inside
//!    `#[target_feature(…fma…)]` functions; use `mul_add`.
//! 5. `unwrap` — no `.unwrap()` and no unallowlisted `.expect()` in
//!    non-test library code.
//! 6. `telemetry_span` — no `span(…)` / `span_with(…)` creation inside
//!    the configured inner-kernel functions (GEMM micro-kernels, SpMM
//!    inner loops); counters are fine there, spans belong at task/hop
//!    granularity.
//!
//! Two repo-level checks ride along: the EXPERIMENTS.md knob table must
//! match the registry ([`knob_table`]), and every expect-allowlist
//! entry must still match a live call site (`stale_allowlist`).
//!
//! Escape hatch: `// ppgnn-analyze: allow(<lint>)` on the finding line
//! or directly above it silences one line; the same comment in the
//! doc/attribute block above a function silences the whole function.

use std::fmt;
use std::path::{Path, PathBuf};

pub mod config;
pub mod knob_table;
mod lints;
mod source;

use config::{Config, FileKind, L_ALLOWLIST, L_PARSE};
use lints::FilePass;
use source::SourceText;

/// One linter finding, pointing at a repo-relative `path:line:col`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Repo-relative `/`-separated path.
    pub path: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    /// Lint name (one of the `config::L_*` constants).
    pub lint: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: deny({}): {}",
            self.path, self.line, self.col, self.lint, self.message
        )
    }
}

/// The outcome of a workspace run.
#[derive(Debug, Default)]
pub struct Report {
    /// All findings, in deterministic (path, line, col) order.
    pub diagnostics: Vec<Diagnostic>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Whether the workspace is lint-clean.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

/// Lints a single file's source text. Returns the diagnostics plus the
/// allowlisted `.expect()` messages seen (for the stale-allowlist
/// aggregation in [`analyze_root`]).
pub fn analyze_source(
    rel_path: &str,
    src: &str,
    kind: FileKind,
    config: &Config,
) -> (Vec<Diagnostic>, Vec<String>) {
    let file = match syn::parse_file(src) {
        Ok(f) => f,
        Err(e) => {
            return (
                vec![Diagnostic {
                    path: rel_path.to_string(),
                    line: e.line,
                    col: 1,
                    lint: L_PARSE,
                    message: format!("failed to lex: {e}"),
                }],
                Vec::new(),
            );
        }
    };
    let all_tokens = collect_tokens(&file.items);
    let text = SourceText::new(src);
    let mut pass = FilePass {
        path: rel_path,
        kind,
        src: &text,
        config,
        seen_expects: Vec::new(),
        diags: Vec::new(),
    };
    pass.run(&file, &all_tokens);
    (pass.diags, pass.seen_expects)
}

/// Flattens the item model back into one token slice for the
/// whole-file scans (L1 unsafe blocks, L2 env reads), so those lints
/// see attribute tokens, signatures, and bodies alike.
fn collect_tokens(items: &[syn::Item]) -> Vec<proc_macro2::TokenTree> {
    let mut out = Vec::new();
    for item in items {
        match item {
            syn::Item::Fn(f) => {
                out.extend(f.sig.rest.iter().cloned());
                if let Some(b) = &f.block {
                    out.push(proc_macro2::TokenTree::Group(b.clone()));
                }
            }
            syn::Item::Impl(i) => {
                out.extend(i.header.iter().cloned());
                out.extend(collect_tokens(&i.items));
            }
            syn::Item::Trait(t) => out.extend(collect_tokens(&t.items)),
            syn::Item::Mod(m) => {
                if let Some(content) = &m.content {
                    out.extend(collect_tokens(content));
                }
            }
            syn::Item::Other(o) => out.extend(o.tokens.iter().cloned()),
        }
        for attr in item.attrs() {
            out.push(proc_macro2::TokenTree::Group(attr.group.clone()));
        }
    }
    out
}

/// Lints every first-party `.rs` file under `root` and runs the
/// repo-level checks (knob table, stale allowlist).
pub fn analyze_root(root: &Path, config: &Config) -> std::io::Result<Report> {
    let mut files = Vec::new();
    discover(root, root, &mut files)?;
    files.sort();

    let mut report = Report::default();
    let mut seen_expects: Vec<String> = Vec::new();
    for rel in &files {
        let src = std::fs::read_to_string(root.join(rel))?;
        let kind = FileKind::classify(rel);
        let (diags, expects) = analyze_source(rel, &src, kind, config);
        report.diagnostics.extend(diags);
        seen_expects.extend(expects);
        report.files_scanned += 1;
    }

    for entry in &config.expect_allowlist {
        if !seen_expects.contains(entry) {
            report.diagnostics.push(Diagnostic {
                path: "crates/analyze/src/config.rs".to_string(),
                line: 1,
                col: 1,
                lint: L_ALLOWLIST,
                message: format!(
                    "expect allowlist entry {entry:?} matches no call site; remove it"
                ),
            });
        }
    }

    report.diagnostics.extend(knob_table::check(root));
    report
        .diagnostics
        .sort_by(|a, b| (&a.path, a.line, a.col).cmp(&(&b.path, b.line, b.col)));
    Ok(report)
}

/// Directory names never descended into: build output, VCS state, the
/// vendored dependency shims (third-party API, not repo policy), and
/// the linter's own deliberately-failing fixtures.
const SKIP_DIRS: &[&str] = &[".git", "target", "vendor", "fixtures"];

fn discover(root: &Path, dir: &Path, out: &mut Vec<String>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            discover(root, &path, out)?;
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_string_lossy().replace('\\', "/"));
            }
        }
    }
    Ok(())
}

/// The workspace root when running via cargo from within the repo:
/// `CARGO_MANIFEST_DIR/../..`, falling back to the current directory.
pub fn default_root() -> PathBuf {
    match std::env::var("CARGO_MANIFEST_DIR") {
        Ok(dir) => {
            let p = Path::new(&dir).join("..").join("..");
            if p.join("Cargo.toml").exists() {
                return p;
            }
            PathBuf::from(".")
        }
        Err(_) => PathBuf::from("."),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_source_produces_no_diagnostics() {
        let src = "pub fn add(a: u32, b: u32) -> u32 { a + b }\n";
        let (diags, _) = analyze_source(
            "crates/x/src/lib.rs",
            src,
            FileKind::Lib,
            &Config::default(),
        );
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn diagnostics_render_path_line_col() {
        let d = Diagnostic {
            path: "crates/x/src/lib.rs".to_string(),
            line: 3,
            col: 7,
            lint: config::L_UNWRAP,
            message: "msg".to_string(),
        };
        assert_eq!(d.to_string(), "crates/x/src/lib.rs:3:7: deny(unwrap): msg");
    }

    #[test]
    fn parse_failure_is_reported_not_fatal() {
        let (diags, _) = analyze_source(
            "crates/x/src/lib.rs",
            "fn broken( { \"unterminated\n",
            FileKind::Lib,
            &Config::default(),
        );
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].lint, L_PARSE);
    }
}
