//! Lint names, file classification, and the repo policy configuration.

/// L1: every `unsafe` block, fn, impl, or trait carries a `// SAFETY:`
/// comment (or a `# Safety` doc section).
pub const L_SAFETY: &str = "safety_comment";
/// L2: every `env::var("PPGNN_*")` read goes through
/// `ppgnn_tensor::knobs`.
pub const L_ENV: &str = "env_knob";
/// L3: hot-path functions contain no allocating calls.
pub const L_ALLOC: &str = "hot_path_alloc";
/// L4: no bare `a * b + c` inside `#[target_feature(…fma…)]` functions.
pub const L_FMA: &str = "unfused_fma";
/// L5: no `.unwrap()` / unallowlisted `.expect()` in library code.
pub const L_UNWRAP: &str = "unwrap";
/// L6: no telemetry span creation (`span(…)` / `span_with(…)`) inside
/// the configured inner-kernel functions — tracing belongs at task/hop
/// granularity, never per row or per tile.
pub const L_TELEMETRY_SPAN: &str = "telemetry_span";
/// L7: no bare `File::create` / `fs::rename` / `fs::write` in the
/// store/manifest write paths — durable writes must route through the
/// atomic-commit funnel (`ppgnn_dataio::commit::write_bytes_atomic`),
/// which is the only write path that survives a crash cleanly.
pub const L_COMMIT: &str = "atomic_commit";
/// The EXPERIMENTS.md knob table matches the registry.
pub const L_KNOB_TABLE: &str = "knob_table";
/// A source file failed to lex.
pub const L_PARSE: &str = "parse";
/// An expect-message allowlist entry matches no remaining call site.
pub const L_ALLOWLIST: &str = "stale_allowlist";

/// What a source file is compiled as; decides which lints apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library code (`crates/*/src`, repo `src/`): all lints.
    Lib,
    /// Binary targets (`src/bin`, `main.rs`, `build.rs`): L1, L2, L4.
    Bin,
    /// Integration tests: L1, L2, L4.
    Test,
    /// Benches: L1, L2, L4.
    Bench,
    /// Examples: L1, L2, L4.
    Example,
}

impl FileKind {
    /// Classifies a repo-relative path (`/`-separated).
    pub fn classify(rel: &str) -> FileKind {
        if rel.starts_with("tests/") || rel.contains("/tests/") {
            FileKind::Test
        } else if rel.contains("/benches/") {
            FileKind::Bench
        } else if rel.starts_with("examples/") || rel.contains("/examples/") {
            FileKind::Example
        } else if rel.contains("/src/bin/")
            || rel.ends_with("/main.rs")
            || rel.ends_with("build.rs")
        {
            FileKind::Bin
        } else {
            FileKind::Lib
        }
    }
}

/// The linter's policy: hot-path function names, the expect-message
/// allowlist, and per-file exemptions. [`Config::default`] is the repo
/// policy; tests construct custom ones.
#[derive(Debug, Clone)]
pub struct Config {
    /// Exact function names on the hot path (L3).
    pub hot_path_exact: Vec<String>,
    /// Function-name prefixes on the hot path (L3).
    pub hot_path_prefixes: Vec<String>,
    /// `.expect()` messages allowed in library code (L5). Every entry
    /// must match at least one live call site or the stale-allowlist
    /// check fires.
    pub expect_allowlist: Vec<String>,
    /// Path suffixes exempt from L2 — the knob registry itself.
    pub env_exempt_suffixes: Vec<String>,
    /// Exact function names where telemetry span creation is forbidden
    /// (L6): the GEMM micro-kernel drivers and SpMM inner loops, where a
    /// span per call would mean thousands of ring-buffer pushes per
    /// matmul. Counters are fine there; spans are not.
    pub span_forbidden_exact: Vec<String>,
    /// Path prefixes whose library code must route durable writes
    /// through the atomic-commit funnel (L7): the store/manifest write
    /// paths where a bare create/rename can leave a half-written file
    /// visible after a crash.
    pub commit_scoped_prefixes: Vec<String>,
    /// Path suffixes exempt from L7 — the funnel itself.
    pub commit_exempt_suffixes: Vec<String>,
}

impl Config {
    /// Whether `name` is on the configured hot-path list.
    pub fn is_hot_path(&self, name: &str) -> bool {
        self.hot_path_exact.iter().any(|e| e == name)
            || self.hot_path_prefixes.iter().any(|p| name.starts_with(p))
    }

    /// Whether `rel` is exempt from the env-knob lint.
    pub fn env_exempt(&self, rel: &str) -> bool {
        self.env_exempt_suffixes.iter().any(|s| rel.ends_with(s))
    }

    /// Whether span creation is forbidden inside fn `name` (L6).
    pub fn is_span_forbidden(&self, name: &str) -> bool {
        self.span_forbidden_exact.iter().any(|e| e == name)
    }

    /// Whether `rel` is inside the atomic-commit scope (L7): under a
    /// scoped prefix and not the funnel module itself.
    pub fn commit_scoped(&self, rel: &str) -> bool {
        self.commit_scoped_prefixes
            .iter()
            .any(|p| rel.starts_with(p))
            && !self.commit_exempt_suffixes.iter().any(|s| rel.ends_with(s))
    }
}

impl Default for Config {
    fn default() -> Config {
        let s = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        Config {
            // The static twin of the runtime ALLOCS pin in
            // tests/preprocess_residency.rs: model forward/backward
            // impls, the SpMM `_into` family, the packed-GEMM drivers,
            // and the trainer's step loop. The allocating convenience
            // wrappers (`spmm`, `matmul`, `Module::forward`) are
            // deliberately absent — allocating the output is their
            // contract.
            hot_path_exact: s(&[
                "forward_into",
                "backward",
                "fit",
                "evaluate",
                "gemm_blocked",
                "gemm_run",
                "gemm_dispatch",
                "batched_run",
                "tile_body",
                "spmm_into",
                "spmm_into_on",
                "spmm_rows_into",
                "spmm_row",
                "spmm_row_untiled",
                // Store decode paths: steady-state reads stage encoded
                // bytes into reused scratch and decode into caller slots —
                // the zero-alloc contract the compressed-store residency
                // test pins at runtime.
                "read_rows_into",
                "read_chunk_into",
                "read_chunk_all_hops_into",
                "read_full_hop_into",
                "fetch_decode_rows",
                "encode_rows",
                "decode_rows",
            ]),
            hot_path_prefixes: s(&["pack_a_", "pack_b_"]),
            expect_allowlist: s(&[
                // tensor::pool — lock poisoning means a worker panicked;
                // propagating the panic is the correct response.
                "pool queue lock poisoned",
                "pool batch lock poisoned",
                "failed to spawn pool worker",
                // tensor::gemm — dispatch invariants.
                "the portable kernel is always supported",
                "the portable kernel is always a candidate",
                "A panel step is MR long",
                "B panel step is NR long",
                // dataio — writer/codec structural invariants.
                "failed to spawn hop-writer thread",
                "finish called once",
                "at least one chunk",
                // graph/partition — construction invariants.
                "pending_rows > 0",
                "len >= 1",
                "non-empty",
                "ghost collected above",
                "extracted partition CSR is structurally valid",
                "vstack shape is consistent by construction",
                // memsim — validated config.
                "invalid hardware spec",
                // core — loader/preprocess invariants.
                "three partitions",
                "in-memory preprocessing performs no I/O",
                "in-memory partitioned preprocessing performs no I/O",
                "failed reap always parks an error",
                "set on previous iteration",
                "dataset generation succeeds",
                "training partition is non-empty",
                // nn/models — training-mode contracts: backward without
                // a forward is a caller bug and must fail loudly.
                "Linear::backward called without a training-mode forward",
                "Relu::backward called without a training-mode forward",
                "PRelu::backward called without a training-mode forward",
                "LayerNorm::backward called without a training-mode forward",
                "BatchNorm1d::backward called without a training-mode forward",
                "MultiHeadAttention::backward called without a training-mode forward",
                "Hoga::backward called without a training-mode forward",
                "hidden layers cache ELU input",
                "cache presence checked above",
                "keys are finite",
                "accuracies are finite",
            ]),
            // The telemetry crate sits below the knobs registry in the
            // dependency order, so its PPGNN_TRACE / PPGNN_TRACE_OUT
            // reads cannot go through ppgnn_tensor::knobs (the knobs
            // module registers the names and documents the exemption).
            env_exempt_suffixes: s(&["crates/tensor/src/knobs.rs", "crates/telemetry/src/lib.rs"]),
            // The innermost compute loops: a span per invocation would
            // push ring events per tile / per row block. Driver-level
            // spans (`spmm_into_on`, preprocessing hops, trainer epochs)
            // are the supported granularity.
            span_forbidden_exact: s(&[
                "gemm_blocked",
                "gemm_run",
                "gemm_dispatch",
                "batched_run",
                "tile_body",
                "spmm_rows_into",
                "spmm_row",
                "spmm_row_untiled",
            ]),
            // Store and manifest write paths: everything dataio writes,
            // plus the preprocessed-output persister. `commit.rs` is the
            // funnel — the one place bare create/rename is the point.
            commit_scoped_prefixes: s(&["crates/dataio/src/", "crates/core/src/persist.rs"]),
            commit_exempt_suffixes: s(&["crates/dataio/src/commit.rs"]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_covers_target_kinds() {
        assert_eq!(
            FileKind::classify("crates/tensor/src/gemm.rs"),
            FileKind::Lib
        );
        assert_eq!(FileKind::classify("src/lib.rs"), FileKind::Lib);
        assert_eq!(FileKind::classify("tests/residency.rs"), FileKind::Test);
        assert_eq!(
            FileKind::classify("crates/analyze/tests/lints.rs"),
            FileKind::Test
        );
        assert_eq!(
            FileKind::classify("crates/bench/benches/gemm.rs"),
            FileKind::Bench
        );
        assert_eq!(
            FileKind::classify("crates/bench/src/bin/exp_tables.rs"),
            FileKind::Bin
        );
        assert_eq!(FileKind::classify("examples/train.rs"), FileKind::Example);
    }

    #[test]
    fn hot_path_matching_uses_exact_and_prefix() {
        let c = Config::default();
        assert!(c.is_hot_path("forward_into"));
        assert!(c.is_hot_path("pack_b_full"));
        assert!(!c.is_hot_path("forward"));
        assert!(!c.is_hot_path("spmm"));
    }
}
