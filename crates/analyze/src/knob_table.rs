//! Generates the EXPERIMENTS.md knob table from
//! [`ppgnn_tensor::knobs::REGISTRY`] and checks the committed copy
//! against it.
//!
//! The table lives between `<!-- knob-table:begin -->` /
//! `<!-- knob-table:end -->` markers; `ppgnn-analyze --write-knob-table`
//! rewrites it in place, and the default check mode reports any drift
//! as a diagnostic so CI keeps docs and registry in lockstep.

use std::path::Path;

use ppgnn_tensor::knobs::{KnobDef, KnobKind, REGISTRY};

use crate::config::L_KNOB_TABLE;
use crate::Diagnostic;

/// Opening marker line in EXPERIMENTS.md.
pub const BEGIN: &str = "<!-- knob-table:begin -->";
/// Closing marker line in EXPERIMENTS.md.
pub const END: &str = "<!-- knob-table:end -->";

fn kind_cell(d: &KnobDef) -> String {
    match d.kind {
        KnobKind::Usize { min, max } => {
            if max == usize::MAX {
                format!("usize ≥ {min}")
            } else {
                format!("usize {min}–{max}")
            }
        }
        KnobKind::U64 => "u64".to_string(),
        KnobKind::Flag => "flag (`1` = on)".to_string(),
        KnobKind::Path => "path".to_string(),
        KnobKind::Text => "string".to_string(),
        KnobKind::Enum(values) => values.join(" \\| "),
    }
}

/// The generated markdown table (markers not included).
pub fn render() -> String {
    let mut out = String::new();
    out.push_str("| knob | type | default | effect |\n");
    out.push_str("|------|------|---------|--------|\n");
    for d in REGISTRY {
        out.push_str(&format!(
            "| `{}` | {} | {} | {} |\n",
            d.name,
            kind_cell(d),
            d.default,
            d.doc
        ));
    }
    out
}

/// Checks `root/EXPERIMENTS.md` against the registry; returns a
/// diagnostic per problem (missing file, missing markers, stale table).
pub fn check(root: &Path) -> Vec<Diagnostic> {
    let path = root.join("EXPERIMENTS.md");
    let diag = |line: usize, message: String| Diagnostic {
        path: "EXPERIMENTS.md".to_string(),
        line,
        col: 1,
        lint: L_KNOB_TABLE,
        message,
    };
    let Ok(text) = std::fs::read_to_string(&path) else {
        return vec![diag(1, "EXPERIMENTS.md is missing".to_string())];
    };
    let Some((line, current)) = extract(&text) else {
        return vec![diag(
            1,
            format!("EXPERIMENTS.md lacks the `{BEGIN}` / `{END}` marker pair"),
        )];
    };
    if current.trim() != render().trim() {
        return vec![diag(
            line,
            "knob table is stale; run `cargo run -p ppgnn-analyze -- --write-knob-table`"
                .to_string(),
        )];
    }
    Vec::new()
}

/// Rewrites the marked region of `root/EXPERIMENTS.md` from the
/// registry.
///
/// # Errors
///
/// Io errors reading/writing the file, or a missing marker pair.
pub fn write(root: &Path) -> std::io::Result<()> {
    let path = root.join("EXPERIMENTS.md");
    let text = std::fs::read_to_string(&path)?;
    if extract(&text).is_none() {
        return Err(std::io::Error::other(format!(
            "EXPERIMENTS.md lacks the `{BEGIN}` / `{END}` marker pair"
        )));
    }
    let begin = text.find(BEGIN).map(|i| i + BEGIN.len());
    let end = text.find(END);
    let (Some(begin), Some(end)) = (begin, end) else {
        unreachable!("extract() checked the markers");
    };
    let mut out = String::with_capacity(text.len());
    out.push_str(&text[..begin]);
    out.push('\n');
    out.push_str(&render());
    out.push_str(&text[end..]);
    std::fs::write(&path, out)
}

/// The current between-markers content and the 1-based line of the
/// opening marker.
fn extract(text: &str) -> Option<(usize, &str)> {
    let begin = text.find(BEGIN)?;
    let end = text.find(END)?;
    if end < begin {
        return None;
    }
    let line = text[..begin].lines().count() + 1;
    Some((line, &text[begin + BEGIN.len()..end]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_emits_one_row_per_registry_entry() {
        let table = render();
        for d in REGISTRY {
            assert!(table.contains(d.name), "{} missing from table", d.name);
        }
        assert_eq!(table.lines().count(), REGISTRY.len() + 2);
    }

    #[test]
    fn extract_finds_marked_region() {
        let text = format!("before\n{BEGIN}\nstale\n{END}\nafter\n");
        let (line, body) = extract(&text).expect("markers present");
        assert_eq!(line, 2);
        assert_eq!(body.trim(), "stale");
        assert!(extract("no markers").is_none());
    }
}
