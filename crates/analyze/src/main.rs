//! CLI for the workspace invariant linter.
//!
//! ```text
//! ppgnn-analyze [--root DIR] [--write-knob-table]
//! ```
//!
//! Exit codes: 0 clean, 1 findings, 2 usage/IO error.

use std::path::PathBuf;
use std::process::ExitCode;

use ppgnn_analyze::{analyze_root, config::Config, default_root, knob_table};

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut write_table = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("error: --root requires a directory argument");
                    return ExitCode::from(2);
                }
            },
            "--write-knob-table" => write_table = true,
            "--help" | "-h" => {
                println!("usage: ppgnn-analyze [--root DIR] [--write-knob-table]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("error: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    let root = root.unwrap_or_else(default_root);

    if write_table {
        return match knob_table::write(&root) {
            Ok(()) => {
                println!(
                    "wrote knob table to {}",
                    root.join("EXPERIMENTS.md").display()
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::from(2)
            }
        };
    }

    let report = match analyze_root(&root, &Config::default()) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    for d in &report.diagnostics {
        println!("{d}");
    }
    if report.is_clean() {
        println!("ppgnn-analyze: {} files clean", report.files_scanned);
        ExitCode::SUCCESS
    } else {
        println!(
            "ppgnn-analyze: {} finding(s) across {} files",
            report.diagnostics.len(),
            report.files_scanned
        );
        ExitCode::FAILURE
    }
}
