//! The workspace lints, implemented as token-pattern scans over
//! the coarse `syn` item model.
//!
//! Heuristics are documented per lint; each diagnostic can be silenced
//! at a single line with `// ppgnn-analyze: allow(<lint>)` on or
//! directly above it, or for a whole function with the same comment in
//! the doc/attribute block above the item.

use proc_macro2::{Delimiter, Group, Span, TokenTree};
use syn::{Attribute, Item, ItemFn};

use crate::config::{
    Config, FileKind, L_ALLOC, L_COMMIT, L_ENV, L_FMA, L_SAFETY, L_TELEMETRY_SPAN, L_UNWRAP,
};
use crate::source::SourceText;
use crate::Diagnostic;

/// Per-file lint pass: shared context plus the produced diagnostics.
pub struct FilePass<'a> {
    pub path: &'a str,
    pub kind: FileKind,
    pub src: &'a SourceText,
    pub config: &'a Config,
    /// `.expect()` messages seen in library scope, for the
    /// stale-allowlist check.
    pub seen_expects: Vec<String>,
    pub diags: Vec<Diagnostic>,
}

impl<'a> FilePass<'a> {
    /// Runs every applicable lint over the parsed file.
    pub fn run(&mut self, file: &syn::File, all_tokens: &[TokenTree]) {
        // Whole-file token scans (L1 unsafe blocks, L2 env reads) see
        // every scope, tests included.
        self.l1_unsafe_blocks(all_tokens);
        if !self.config.env_exempt(self.path) {
            self.l2_env_reads(all_tokens);
        }
        self.walk_items(&file.items, false);
    }

    fn emit(&mut self, lint: &'static str, span: Span, message: String) {
        let line = span.start().line;
        if self.src.allowed_at(lint, line) {
            return;
        }
        self.diags.push(Diagnostic {
            path: self.path.to_string(),
            line,
            col: span.start().column + 1,
            lint,
            message,
        });
    }

    // ------------------------------------------------------------------
    // Item walk: fn-aware lints (L1 decls, L3, L4, L5).
    // ------------------------------------------------------------------

    fn walk_items(&mut self, items: &[Item], in_test: bool) {
        for item in items {
            let in_test = in_test || item.attrs().iter().any(Attribute::is_cfg_test);
            match item {
                Item::Fn(f) => self.visit_fn(f, in_test),
                Item::Impl(i) => {
                    if let Some(span) = i.unsafety {
                        self.l1_unsafe_decl(span, "unsafe impl");
                    }
                    self.walk_items(&i.items, in_test);
                }
                Item::Trait(t) => {
                    if let Some(span) = t.unsafety {
                        self.l1_unsafe_decl(span, "unsafe trait");
                    }
                    self.walk_items(&t.items, in_test);
                }
                Item::Mod(m) => {
                    if let Some(content) = &m.content {
                        self.walk_items(content, in_test);
                    }
                }
                Item::Other(o) => {
                    // Statics, consts, macro invocations: still library
                    // scope for the unwrap policy.
                    if self.lint_l5_here(in_test) {
                        self.l5_scan(&o.tokens);
                    }
                }
            }
        }
    }

    fn visit_fn(&mut self, f: &ItemFn, in_test: bool) {
        let in_test = in_test || f.attrs.iter().any(|a| a.is("test"));

        if let Some(span) = f.sig.unsafety {
            self.l1_unsafe_decl(span, "unsafe fn");
        }

        let body: &[TokenTree] = f.block.as_ref().map(|g| g.stream().trees()).unwrap_or(&[]);

        if self.kind == FileKind::Lib
            && !in_test
            && self.config.is_hot_path(&f.sig.ident.to_string())
            && !self.src.allowed_above_item(L_ALLOC, f.start_line())
        {
            self.l3_scan(body, &f.sig.ident.to_string());
        }

        if self.fn_has_fma_target_feature(f) && !self.src.allowed_above_item(L_FMA, f.start_line())
        {
            self.l4_scan(body);
        }

        if self.kind == FileKind::Lib
            && !in_test
            && self.config.is_span_forbidden(&f.sig.ident.to_string())
            && !self
                .src
                .allowed_above_item(L_TELEMETRY_SPAN, f.start_line())
        {
            self.l6_scan(body, &f.sig.ident.to_string());
        }

        if self.kind == FileKind::Lib
            && !in_test
            && self.config.commit_scoped(self.path)
            && !self.src.allowed_above_item(L_COMMIT, f.start_line())
        {
            self.l7_scan(body, &f.sig.ident.to_string());
        }

        if self.lint_l5_here(in_test) && !self.src.allowed_above_item(L_UNWRAP, f.start_line()) {
            self.l5_scan(&f.sig.rest);
            self.l5_scan(body);
        }
    }

    fn lint_l5_here(&self, in_test: bool) -> bool {
        self.kind == FileKind::Lib && !in_test
    }

    fn fn_has_fma_target_feature(&self, f: &ItemFn) -> bool {
        f.attrs
            .iter()
            .any(|a| a.is("target_feature") && a.any_literal_contains("fma"))
    }

    // ------------------------------------------------------------------
    // L1 — SAFETY comments.
    // ------------------------------------------------------------------

    fn l1_unsafe_decl(&mut self, span: Span, what: &str) {
        let line = span.start().line;
        if self.src.has_safety_doc(line) || self.src.allowed_above_item(L_SAFETY, line) {
            return;
        }
        self.emit(
            L_SAFETY,
            span,
            format!("{what} without a `// SAFETY:` comment or `# Safety` doc section"),
        );
    }

    /// Scans every token depth for `unsafe { … }` blocks. `unsafe fn` /
    /// `unsafe impl` / `unsafe trait` keywords are followed by an
    /// identifier, not a brace group, so they never match here.
    fn l1_unsafe_blocks(&mut self, toks: &[TokenTree]) {
        for w in toks.windows(2) {
            if let (TokenTree::Ident(kw), TokenTree::Group(g)) = (&w[0], &w[1]) {
                if *kw == "unsafe" && g.delimiter() == Delimiter::Brace {
                    let line = kw.span().start().line;
                    if !self.src.has_safety_doc(line) {
                        self.emit(
                            L_SAFETY,
                            kw.span(),
                            "unsafe block without a `// SAFETY:` comment".to_string(),
                        );
                    }
                }
            }
        }
        for t in toks {
            if let TokenTree::Group(g) = t {
                self.l1_unsafe_blocks(g.stream().trees());
            }
        }
    }

    // ------------------------------------------------------------------
    // L2 — PPGNN env reads must go through the knobs registry.
    // ------------------------------------------------------------------

    fn l2_env_reads(&mut self, toks: &[TokenTree]) {
        for i in 0..toks.len() {
            let is_env = matches!(&toks[i], TokenTree::Ident(id) if *id == "env");
            if !is_env || i + 4 >= toks.len() {
                continue;
            }
            let path_sep = is_punct(&toks[i + 1], ':') && is_punct(&toks[i + 2], ':');
            let var = matches!(&toks[i + 3], TokenTree::Ident(id) if *id == "var"
                || *id == "var_os");
            if !(path_sep && var) {
                continue;
            }
            if let Some(TokenTree::Group(args)) = toks.get(i + 4) {
                if args.delimiter() == Delimiter::Parenthesis {
                    let ppgnn = args.stream().trees().iter().any(|t| {
                        matches!(t, TokenTree::Literal(l)
                            if l.to_string().starts_with("\"PPGNN_"))
                    });
                    if ppgnn {
                        self.emit(
                            L_ENV,
                            toks[i].span(),
                            "raw env read of a PPGNN_* knob; use ppgnn_tensor::knobs".to_string(),
                        );
                    }
                }
            }
        }
        for t in toks {
            if let TokenTree::Group(g) = t {
                self.l2_env_reads(g.stream().trees());
            }
        }
    }

    // ------------------------------------------------------------------
    // L3 — no allocating calls on the hot path.
    // ------------------------------------------------------------------

    fn l3_scan(&mut self, toks: &[TokenTree], fn_name: &str) {
        for i in 0..toks.len() {
            if let Some((span, what)) = match_alloc_call(toks, i) {
                self.emit(
                    L_ALLOC,
                    span,
                    format!("{what} inside hot-path fn `{fn_name}`"),
                );
            }
        }
        for t in toks {
            if let TokenTree::Group(g) = t {
                self.l3_scan(g.stream().trees(), fn_name);
            }
        }
    }

    // ------------------------------------------------------------------
    // L6 — no span creation inside inner-kernel functions.
    // ------------------------------------------------------------------

    /// A `span(…)` / `span_with(…)` call at any token depth — whether
    /// path-qualified (`ppgnn_telemetry::span(…)`) or imported bare —
    /// inside a function where [`Config::span_forbidden_exact`] bans
    /// tracing. Member accesses like `span.start()` do not match (the
    /// identifier must be followed directly by a parenthesis group).
    fn l6_scan(&mut self, toks: &[TokenTree], fn_name: &str) {
        for i in 0..toks.len() {
            let is_span_call = matches!(&toks[i], TokenTree::Ident(id)
                    if *id == "span" || *id == "span_with")
                && matches!(toks.get(i + 1), Some(TokenTree::Group(g))
                    if g.delimiter() == Delimiter::Parenthesis);
            if is_span_call {
                self.emit(
                    L_TELEMETRY_SPAN,
                    toks[i].span(),
                    format!(
                        "telemetry span created inside inner-kernel fn `{fn_name}`; \
                         trace at task/hop granularity instead (counters are fine here)"
                    ),
                );
            }
        }
        for t in toks {
            if let TokenTree::Group(g) = t {
                self.l6_scan(g.stream().trees(), fn_name);
            }
        }
    }

    // ------------------------------------------------------------------
    // L7 — store writes go through the atomic-commit funnel.
    // ------------------------------------------------------------------

    /// Bare durable-write calls (`File::create`, `fs::rename`,
    /// `fs::write`) at any token depth inside library functions of the
    /// commit-scoped paths. Reads (`File::open`, `fs::read*`) and test
    /// scopes never match; the funnel module itself is exempt by path.
    fn l7_scan(&mut self, toks: &[TokenTree], fn_name: &str) {
        for i in 0..toks.len() {
            let Some((span, what)) = match_bare_write_call(toks, i) else {
                continue;
            };
            self.emit(
                L_COMMIT,
                span,
                format!(
                    "bare {what} on a store path in fn `{fn_name}`; route durable \
                     writes through ppgnn_dataio::commit::write_bytes_atomic"
                ),
            );
        }
        for t in toks {
            if let TokenTree::Group(g) = t {
                self.l7_scan(g.stream().trees(), fn_name);
            }
        }
    }

    // ------------------------------------------------------------------
    // L4 — fma target-feature functions must use mul_add.
    // ------------------------------------------------------------------

    /// Heuristic: within one comma/semicolon-delimited token segment at
    /// a single nesting depth, a binary `*` together with a later
    /// binary `+` is an unfused multiply-add. Bracket groups (indexing
    /// — integer math) are not descended into; parenthesising the
    /// product explicitly, e.g. `(a * b) + c`, also opts out.
    fn l4_scan(&mut self, toks: &[TokenTree]) {
        let mut star: Option<Span> = None;
        let mut plus: Option<Span> = None;
        for i in 0..toks.len() {
            match &toks[i] {
                TokenTree::Punct(p) if p.as_char() == ',' || p.as_char() == ';' => {
                    star = None;
                    plus = None;
                }
                TokenTree::Punct(p) if p.as_char() == '*' && is_binary_op(toks, i) => {
                    star = Some(p.span());
                }
                TokenTree::Punct(p) if p.as_char() == '+' && is_binary_op(toks, i) => {
                    plus = Some(p.span());
                }
                _ => {}
            }
            if let (Some(_), Some(pspan)) = (star, plus) {
                self.emit(
                    L_FMA,
                    pspan,
                    "bare `a * b + c` in an fma target-feature fn; use `mul_add`".to_string(),
                );
                star = None;
                plus = None;
            }
        }
        for t in toks {
            if let TokenTree::Group(g) = t {
                if g.delimiter() != Delimiter::Bracket {
                    self.l4_scan(g.stream().trees());
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // L5 — unwrap/expect policy.
    // ------------------------------------------------------------------

    fn l5_scan(&mut self, toks: &[TokenTree]) {
        for i in 0..toks.len() {
            let Some((span, method, args)) = match_method_call(toks, i) else {
                continue;
            };
            match method.as_str() {
                "unwrap" if args.stream().is_empty() => {
                    self.emit(
                        L_UNWRAP,
                        span,
                        "`.unwrap()` in library code; handle the error or use `.expect()` \
                         with an allowlisted invariant message"
                            .to_string(),
                    );
                }
                "expect" => match single_string_arg(args) {
                    Some(m) => {
                        if self.config.expect_allowlist.contains(&m) {
                            self.seen_expects.push(m);
                        } else {
                            self.emit(
                                L_UNWRAP,
                                span,
                                format!(
                                    "`.expect({m:?})` message is not on the allowlist in \
                                     crates/analyze/src/config.rs"
                                ),
                            );
                        }
                    }
                    None => self.emit(
                        L_UNWRAP,
                        span,
                        "`.expect(…)` with a non-literal message in library code".to_string(),
                    ),
                },
                _ => {}
            }
        }
        for t in toks {
            if let TokenTree::Group(g) = t {
                self.l5_scan(g.stream().trees());
            }
        }
    }
}

// ----------------------------------------------------------------------
// Token-pattern helpers.
// ----------------------------------------------------------------------

fn is_punct(t: &TokenTree, c: char) -> bool {
    matches!(t, TokenTree::Punct(p) if p.as_char() == c)
}

fn is_ident(t: &TokenTree, s: &str) -> bool {
    matches!(t, TokenTree::Ident(i) if *i == s)
}

/// `.name(…)` at position `i` (the dot): returns the name span, the
/// method name, and the argument group.
fn match_method_call(toks: &[TokenTree], i: usize) -> Option<(Span, String, &Group)> {
    if !is_punct(toks.get(i)?, '.') {
        return None;
    }
    let name = match toks.get(i + 1)? {
        TokenTree::Ident(n) => n,
        _ => return None,
    };
    let args = match toks.get(i + 2)? {
        TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => g,
        _ => return None,
    };
    Some((name.span(), name.to_string(), args))
}

/// The unescaped value of a single string-literal argument.
fn single_string_arg(args: &Group) -> Option<String> {
    let trees = args.stream().trees();
    if trees.len() != 1 {
        return None;
    }
    let TokenTree::Literal(l) = &trees[0] else {
        return None;
    };
    let text = l.to_string();
    let inner = text.strip_prefix('"')?.strip_suffix('"')?;
    Some(inner.replace("\\\"", "\"").replace("\\\\", "\\"))
}

/// An allocating call starting at position `i`: `Matrix::zeros`,
/// `vec![…]`, `Vec::new()`, `.clone()`, `.to_vec()`.
fn match_alloc_call(toks: &[TokenTree], i: usize) -> Option<(Span, &'static str)> {
    if is_ident(&toks[i], "Matrix")
        && toks.len() > i + 3
        && is_punct(&toks[i + 1], ':')
        && is_punct(&toks[i + 2], ':')
        && is_ident(&toks[i + 3], "zeros")
    {
        return Some((toks[i].span(), "`Matrix::zeros`"));
    }
    if is_ident(&toks[i], "vec") && toks.len() > i + 1 && is_punct(&toks[i + 1], '!') {
        return Some((toks[i].span(), "`vec![…]`"));
    }
    if is_ident(&toks[i], "Vec")
        && toks.len() > i + 3
        && is_punct(&toks[i + 1], ':')
        && is_punct(&toks[i + 2], ':')
        && is_ident(&toks[i + 3], "new")
    {
        return Some((toks[i].span(), "`Vec::new`"));
    }
    if let Some((span, method, args)) = match_method_call(toks, i) {
        if method == "clone" && args.stream().is_empty() {
            return Some((span, "`.clone()`"));
        }
        if method == "to_vec" {
            return Some((span, "`.to_vec()`"));
        }
    }
    None
}

/// A non-atomic durable-write call starting at position `i`:
/// `File::create`, `fs::rename`, or `fs::write` (path-qualified with
/// any leading segments — the scan only needs the final
/// `seg :: name ( … )` shape).
fn match_bare_write_call(toks: &[TokenTree], i: usize) -> Option<(Span, &'static str)> {
    let seg_call = |seg: &str, name: &str| -> bool {
        is_ident(&toks[i], seg)
            && toks.len() > i + 4
            && is_punct(&toks[i + 1], ':')
            && is_punct(&toks[i + 2], ':')
            && is_ident(&toks[i + 3], name)
            && matches!(&toks[i + 4], TokenTree::Group(g)
                if g.delimiter() == Delimiter::Parenthesis)
    };
    if seg_call("File", "create") {
        return Some((toks[i].span(), "`File::create`"));
    }
    if seg_call("fs", "rename") {
        return Some((toks[i].span(), "`fs::rename`"));
    }
    if seg_call("fs", "write") {
        return Some((toks[i].span(), "`fs::write`"));
    }
    None
}

/// Whether the punct at `i` acts as a binary operator: preceded by an
/// identifier, literal, or closing group, and not part of a compound
/// assignment (`*=`, `+=`).
fn is_binary_op(toks: &[TokenTree], i: usize) -> bool {
    if i == 0 {
        return false;
    }
    let lhs_ok = matches!(
        &toks[i - 1],
        TokenTree::Ident(_) | TokenTree::Literal(_) | TokenTree::Group(_)
    );
    let compound = matches!(toks.get(i + 1), Some(TokenTree::Punct(p)) if p.as_char() == '=');
    lhs_ok && !compound
}
