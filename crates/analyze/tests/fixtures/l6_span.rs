//! Fixture for the `telemetry_span` lint. Not compiled — scanned by
//! crates/analyze/tests/lints.rs.

pub fn spmm_row(x: &[f32]) -> f32 {
    let _guard = ppgnn_telemetry::span("spmm_row");
    x.iter().sum()
}

pub fn gemm_run(x: &[f32]) -> f32 {
    let _guard = span_with("gemm", &[("n", x.len() as u64)]);
    x.iter().sum()
}

pub fn tile_body(x: &[f32]) -> f32 {
    // Counters stay legal inside inner kernels; only spans are banned.
    KERNEL_CALLS.add(1);
    x.iter().sum()
}

pub fn spmm_into(x: &[f32]) -> f32 {
    // Driver granularity: spans outside the forbidden list are fine.
    let _guard = ppgnn_telemetry::span("spmm");
    x.iter().sum()
}

pub fn gemm_dispatch(ev: &Event) -> usize {
    // A member named `span` is not a call — must not match.
    ev.span.line
}

// ppgnn-analyze: allow(telemetry_span) -- fixture fn-level escape hatch.
pub fn spmm_row_untiled(x: &[f32]) -> f32 {
    let _guard = span("escaped");
    x.iter().sum()
}
