//! Fixture for the `hot_path_alloc` lint. Not compiled — scanned by
//! crates/analyze/tests/lints.rs.

pub fn forward_into(x: &[f32], out: &mut Vec<f32>) {
    let tmp = vec![0.0f32; 4];
    let copy = tmp.clone();
    out.extend(copy);
}

pub fn not_hot_path_is_fine() -> Vec<u32> {
    vec![1, 2, 3]
}

// ppgnn-analyze: allow(hot_path_alloc) -- fixture fn-level escape hatch.
pub fn spmm_into() {
    let zeroed = Matrix::zeros(2, 2);
    drop(zeroed);
}

pub fn backward() {
    // ppgnn-analyze: allow(hot_path_alloc) -- fixture line-level escape
    // hatch with a multi-line justification.
    let hatched = vec![1];
    let fires: Vec<u32> = Vec::new();
    drop((hatched, fires));
}
