//! Fixture for the `env_knob` lint. Not compiled — scanned by
//! crates/analyze/tests/lints.rs.

pub fn fires() -> Option<String> {
    std::env::var("PPGNN_FIXTURE_KNOB").ok()
}

pub fn bare_path_fires() -> Option<String> {
    env::var("PPGNN_FIXTURE_KNOB").ok()
}

pub fn non_knob_is_fine() -> Option<String> {
    std::env::var("HOME").ok()
}

pub fn escaped() -> Option<String> {
    // ppgnn-analyze: allow(env_knob) -- fixture escape hatch.
    std::env::var("PPGNN_FIXTURE_KNOB").ok()
}
