//! Fixture for the `safety_comment` lint. Not compiled — scanned by
//! crates/analyze/tests/lints.rs.

pub fn fires() {
    unsafe { danger() }
}

pub fn justified() {
    // SAFETY: bounds checked by the caller.
    unsafe { danger() }
}

/// Does a documented dangerous thing.
///
/// # Safety
///
/// Caller must uphold X.
pub unsafe fn documented_decl() {}

pub unsafe fn undocumented_decl() {}

pub fn escaped() {
    // ppgnn-analyze: allow(safety_comment) -- fixture escape hatch.
    unsafe { danger() }
}
