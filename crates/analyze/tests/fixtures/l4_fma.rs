//! Fixture for the `unfused_fma` lint. Not compiled — scanned by
//! crates/analyze/tests/lints.rs.

/// # Safety
/// CPU must support AVX2+FMA.
#[target_feature(enable = "avx2", enable = "fma")]
pub unsafe fn fires(a: f32, b: f32, c: f32) -> f32 {
    a * b + c
}

/// # Safety
/// CPU must support AVX2+FMA.
#[target_feature(enable = "avx2", enable = "fma")]
pub unsafe fn fused_is_fine(a: f32, b: f32, c: f32) -> f32 {
    a.mul_add(b, c)
}

/// # Safety
/// CPU must support AVX2+FMA.
#[target_feature(enable = "avx2", enable = "fma")]
pub unsafe fn grouped_opt_out_is_fine(a: f32, b: f32, c: f32) -> f32 {
    (a * b) + c
}

pub fn no_target_feature_is_fine(a: f32, b: f32, c: f32) -> f32 {
    a * b + c
}

/// # Safety
/// CPU must support AVX-512F (no fma feature string).
#[target_feature(enable = "avx512f")]
pub unsafe fn other_feature_is_fine(a: f32, b: f32, c: f32) -> f32 {
    a * b + c
}

/// # Safety
/// CPU must support AVX2+FMA.
// ppgnn-analyze: allow(unfused_fma) -- fixture fn-level escape hatch.
#[target_feature(enable = "avx2", enable = "fma")]
pub unsafe fn escaped(a: f32, b: f32, c: f32) -> f32 {
    a * b + c
}
