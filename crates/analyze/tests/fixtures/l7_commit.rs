//! Fixture for the `atomic_commit` lint. Not compiled — scanned by
//! crates/analyze/tests/lints.rs.

pub fn fires_on_create(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    f.write_all(bytes)
}

pub fn fires_on_rename(tmp: &Path, path: &Path) -> std::io::Result<()> {
    fs::rename(tmp, path)
}

pub fn fires_on_fs_write(path: &Path) -> std::io::Result<()> {
    fs::write(path, b"manifest")
}

pub fn reads_are_fine(path: &Path) -> std::io::Result<String> {
    let _f = File::open(path)?;
    fs::read_to_string(path)
}

pub fn funnel_is_fine(path: &Path, bytes: &[u8]) -> Result<(), DataIoError> {
    crate::commit::write_bytes_atomic("manifest", path, bytes)
}

// ppgnn-analyze: allow(atomic_commit) -- fixture fn-level escape hatch.
pub fn escaped(path: &Path) -> std::io::Result<File> {
    File::create(path)
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_scope_is_exempt() {
        let _f = std::fs::File::create("/tmp/fixture").unwrap();
        fs::rename("/tmp/fixture", "/tmp/fixture2").unwrap();
    }
}
