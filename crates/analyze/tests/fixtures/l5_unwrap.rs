//! Fixture for the `unwrap` lint. Not compiled — scanned by
//! crates/analyze/tests/lints.rs with an allowlist containing only
//! "fixture invariant holds".

pub fn fires(o: Option<u32>) -> u32 {
    o.unwrap()
}

pub fn allowlisted_expect_is_fine(o: Option<u32>) -> u32 {
    o.expect("fixture invariant holds")
}

pub fn unlisted_expect_fires(o: Option<u32>) -> u32 {
    o.expect("this message is not on the allowlist")
}

pub fn dynamic_expect_fires(o: Option<u32>, why: &str) -> u32 {
    o.expect(why)
}

// ppgnn-analyze: allow(unwrap) -- fixture fn-level escape hatch.
pub fn escaped(o: Option<u32>) -> u32 {
    o.unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_test_code_is_fine() {
        assert_eq!(Some(1).unwrap(), 1);
    }
}
