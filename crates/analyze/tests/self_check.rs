//! The workspace must stay lint-clean: `cargo test -p ppgnn-analyze`
//! fails if any lint fires on the repo itself or the EXPERIMENTS.md
//! knob table drifts from the registry.

use ppgnn_analyze::config::Config;
use ppgnn_analyze::{analyze_root, default_root};

#[test]
fn workspace_is_lint_clean() {
    let root = default_root();
    assert!(
        root.join("ROADMAP.md").exists(),
        "self-check must run from within the repo (got {})",
        root.display()
    );
    let report = analyze_root(&root, &Config::default()).expect("workspace sources are readable");
    assert!(report.files_scanned > 50, "suspiciously few files scanned");
    assert!(
        report.is_clean(),
        "ppgnn-analyze found {} issue(s):\n{}",
        report.diagnostics.len(),
        report
            .diagnostics
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
