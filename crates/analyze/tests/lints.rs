//! Fixture tests: each lint fires on its fixture, honors the escape
//! hatches, and scopes to the right file kinds.

use ppgnn_analyze::config::{
    Config, FileKind, L_ALLOC, L_COMMIT, L_ENV, L_FMA, L_SAFETY, L_TELEMETRY_SPAN, L_UNWRAP,
};
use ppgnn_analyze::{analyze_source, Diagnostic};

fn lib_diags(src: &str, config: &Config) -> Vec<Diagnostic> {
    let (diags, _) = analyze_source("crates/x/src/lib.rs", src, FileKind::Lib, config);
    diags
}

#[test]
fn l1_safety_comment_fires_and_respects_justifications() {
    let src = include_str!("fixtures/l1_unsafe.rs");
    let diags = lib_diags(src, &Config::default());
    let l1: Vec<_> = diags.iter().filter(|d| d.lint == L_SAFETY).collect();
    // `fires()`'s block and `undocumented_decl`; the justified block, the
    // documented decl, and the escaped block stay silent.
    assert_eq!(l1.len(), 2, "{l1:?}");
    assert!(l1.iter().any(|d| d.message.contains("unsafe block")));
    assert!(l1.iter().any(|d| d.message.contains("unsafe fn")));
}

#[test]
fn l2_env_knob_fires_on_raw_ppgnn_reads_only() {
    let src = include_str!("fixtures/l2_env.rs");
    let diags = lib_diags(src, &Config::default());
    let l2: Vec<_> = diags.iter().filter(|d| d.lint == L_ENV).collect();
    // `fires()` and `bare_path_fires()`; HOME and the escaped read pass.
    assert_eq!(l2.len(), 2, "{l2:?}");

    // The knobs registry itself is exempt by path.
    let (diags, _) = analyze_source(
        "crates/tensor/src/knobs.rs",
        "pub fn raw() { std::env::var(\"PPGNN_X\").ok(); }\n",
        FileKind::Lib,
        &Config::default(),
    );
    assert!(diags.iter().all(|d| d.lint != L_ENV), "{diags:?}");
}

#[test]
fn l3_hot_path_alloc_fires_in_lib_hot_fns_only() {
    let src = include_str!("fixtures/l3_alloc.rs");
    let diags = lib_diags(src, &Config::default());
    let l3: Vec<_> = diags.iter().filter(|d| d.lint == L_ALLOC).collect();
    // forward_into: vec![] + .clone(); backward: the un-hatched Vec::new.
    assert_eq!(l3.len(), 3, "{l3:?}");
    assert!(l3.iter().all(|d| d.message.contains("hot-path fn")));

    // The same text in a test file is exempt.
    let (diags, _) = analyze_source(
        "crates/x/tests/alloc.rs",
        src,
        FileKind::Test,
        &Config::default(),
    );
    assert!(diags.iter().all(|d| d.lint != L_ALLOC), "{diags:?}");
}

#[test]
fn l4_unfused_fma_fires_under_fma_target_feature_only() {
    let src = include_str!("fixtures/l4_fma.rs");
    let diags = lib_diags(src, &Config::default());
    let l4: Vec<_> = diags.iter().filter(|d| d.lint == L_FMA).collect();
    // Only `fires()`: mul_add, the parenthesised product, the
    // feature-less fn, the non-fma feature fn, and the escaped fn pass.
    assert_eq!(l4.len(), 1, "{l4:?}");
    assert!(l4[0].message.contains("mul_add"));
}

#[test]
fn l5_unwrap_policy_fires_with_allowlist_and_test_scoping() {
    let config = Config {
        expect_allowlist: vec!["fixture invariant holds".to_string()],
        ..Config::default()
    };
    let src = include_str!("fixtures/l5_unwrap.rs");
    let (diags, seen) = analyze_source("crates/x/src/lib.rs", src, FileKind::Lib, &config);
    let l5: Vec<_> = diags.iter().filter(|d| d.lint == L_UNWRAP).collect();
    // `fires()`, the unlisted expect, and the dynamic expect; the
    // allowlisted expect, the escaped fn, and the #[cfg(test)] mod pass.
    assert_eq!(l5.len(), 3, "{l5:?}");
    assert_eq!(seen, vec!["fixture invariant holds".to_string()]);

    // Bin targets are exempt from the unwrap policy entirely.
    let (diags, _) = analyze_source("crates/x/src/bin/tool.rs", src, FileKind::Bin, &config);
    assert!(diags.iter().all(|d| d.lint != L_UNWRAP), "{diags:?}");
}

#[test]
fn l6_telemetry_span_fires_in_forbidden_kernels_only() {
    let src = include_str!("fixtures/l6_span.rs");
    let diags = lib_diags(src, &Config::default());
    let l6: Vec<_> = diags
        .iter()
        .filter(|d| d.lint == L_TELEMETRY_SPAN)
        .collect();
    // `spmm_row` (path-qualified span) and `gemm_run` (bare span_with);
    // the counter, the driver-level span, the `.span` member access, and
    // the escaped fn pass.
    assert_eq!(l6.len(), 2, "{l6:?}");
    assert!(l6.iter().all(|d| d.message.contains("inner-kernel fn")));
    assert!(l6.iter().any(|d| d.message.contains("`spmm_row`")));
    assert!(l6.iter().any(|d| d.message.contains("`gemm_run`")));

    // The same text in a test file is exempt.
    let (diags, _) = analyze_source(
        "crates/x/tests/span.rs",
        src,
        FileKind::Test,
        &Config::default(),
    );
    assert!(
        diags.iter().all(|d| d.lint != L_TELEMETRY_SPAN),
        "{diags:?}"
    );
}

#[test]
fn l7_atomic_commit_fires_on_commit_scoped_store_paths_only() {
    let src = include_str!("fixtures/l7_commit.rs");
    let config = Config::default();
    // A dataio store module is commit-scoped: the three bare write calls
    // fire; reads, the funnel call, the escaped fn, and the
    // #[cfg(test)] mod pass.
    let (diags, _) = analyze_source("crates/dataio/src/store.rs", src, FileKind::Lib, &config);
    let l7: Vec<_> = diags.iter().filter(|d| d.lint == L_COMMIT).collect();
    assert_eq!(l7.len(), 3, "{l7:?}");
    assert!(l7.iter().any(|d| d.message.contains("`File::create`")));
    assert!(l7.iter().any(|d| d.message.contains("`fs::rename`")));
    assert!(l7.iter().any(|d| d.message.contains("`fs::write`")));
    assert!(l7.iter().all(|d| d.message.contains("write_bytes_atomic")));

    // The funnel module itself is exempt by path.
    let (diags, _) = analyze_source("crates/dataio/src/commit.rs", src, FileKind::Lib, &config);
    assert!(diags.iter().all(|d| d.lint != L_COMMIT), "{diags:?}");

    // Paths outside the commit scope are exempt.
    let (diags, _) = analyze_source("crates/x/src/lib.rs", src, FileKind::Lib, &config);
    assert!(diags.iter().all(|d| d.lint != L_COMMIT), "{diags:?}");

    // The same text in a test file is exempt.
    let (diags, _) = analyze_source(
        "crates/dataio/tests/commit.rs",
        src,
        FileKind::Test,
        &config,
    );
    assert!(diags.iter().all(|d| d.lint != L_COMMIT), "{diags:?}");
}

#[test]
fn quote_built_source_is_lintable() {
    // The vendored quote! shim re-lexes its body; Display round-trips it
    // into analyzable source text.
    let tokens = quote::quote! {
        pub fn helper(o: Option<u32>) -> u32 { o.unwrap() }
    };
    let diags = lib_diags(&tokens.to_string(), &Config::default());
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].lint, L_UNWRAP);
}
