//! Atomic file commit and the completed-units journal.
//!
//! Every durable write in the store stack funnels through
//! [`write_bytes_atomic`]: stage to a sibling `*.tmp`, `write_all`,
//! `sync_all`, then `rename` over the destination (plus a best-effort
//! parent-directory fsync so the rename itself is durable). A crash at
//! any point leaves either the old file or the new one — never a
//! half-written visible file. The `ppgnn-analyze` `atomic_commit` lint
//! bans bare `File::create`/`fs::rename` on store paths outside this
//! module, so the funnel stays the only write path.
//!
//! [`Journal`] is the store writer's completed-units log: one
//! `done=<hop>` line appended and fsynced after each hop-file commit.
//! An interrupted run replays it (entries are re-verified against the
//! hop files on disk before being trusted) and re-diffuses only the
//! missing units. The manifest — written last, atomically — is the
//! commit point; the journal is removed once it lands.
//!
//! Both paths are fault-injection points (see [`crate::fault`]): sites
//! are named by the caller of [`write_bytes_atomic`], and journal
//! appends check the `journal` site.

use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

use crate::error::DataIoError;
use crate::fault::{self, FaultKind};

/// File name of the completed-units journal inside a store directory.
pub const JOURNAL: &str = "journal.txt";

const JOURNAL_HEADER: &str = "ppgnn-journal v1";

fn io_err(path: &Path, e: &std::io::Error) -> DataIoError {
    DataIoError::Io(format!("{}: {e}", path.display()))
}

fn tmp_path(path: &Path) -> PathBuf {
    let mut name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_default();
    name.push(".tmp");
    path.with_file_name(name)
}

/// Atomically replaces `path` with `bytes`: temp file, flush,
/// `sync_all`, rename, best-effort directory sync. `site` names the
/// fault-injection point for this write (e.g. `"hop"`, `"manifest"`).
///
/// # Errors
///
/// I/O failures at any stage (including injected ones); on error the
/// destination is untouched — at worst a `*.tmp` sibling is left
/// behind, which the next successful commit overwrites.
pub fn write_bytes_atomic(site: &str, path: &Path, bytes: &[u8]) -> Result<(), DataIoError> {
    if let Some(f) = fault::write_fault(site, path) {
        match f.kind {
            FaultKind::WriteErr => return Err(f.to_io_error().into()),
            FaultKind::Torn => {
                // Half the bytes reach the temp file before the
                // "process dies": the destination must stay untouched.
                let tmp = tmp_path(path);
                let mut file = File::create(&tmp).map_err(|e| io_err(&tmp, &e))?;
                file.write_all(&bytes[..bytes.len() / 2])
                    .map_err(|e| io_err(&tmp, &e))?;
                let _ = file.sync_all();
                return Err(f.to_io_error().into());
            }
            FaultKind::BitFlip => {
                // Silent media corruption: one bit flips, the commit
                // "succeeds". Read-side checksums must catch this.
                let mut flipped = bytes.to_vec();
                if !flipped.is_empty() {
                    let (byte, bit) = f.flip_position(flipped.len());
                    flipped[byte] ^= 1u8 << bit;
                }
                return commit(path, &flipped);
            }
            FaultKind::ReadErr => {}
        }
    }
    commit(path, bytes)
}

fn commit(path: &Path, bytes: &[u8]) -> Result<(), DataIoError> {
    let tmp = tmp_path(path);
    let mut file = File::create(&tmp).map_err(|e| io_err(&tmp, &e))?;
    file.write_all(bytes).map_err(|e| io_err(&tmp, &e))?;
    file.sync_all().map_err(|e| io_err(&tmp, &e))?;
    drop(file);
    fs::rename(&tmp, path).map_err(|e| io_err(path, &e))?;
    sync_dir(path);
    Ok(())
}

/// Best-effort parent-directory fsync: makes the rename durable on
/// POSIX filesystems; failures (platforms where directories cannot be
/// opened) do not fail the commit.
fn sync_dir(path: &Path) {
    if let Some(parent) = path.parent() {
        if let Ok(dir) = File::open(parent) {
            let _ = dir.sync_all();
        }
    }
}

/// The append-only completed-units journal of one store directory.
///
/// Layout: a header line, a `geometry=` line binding the journal to the
/// store shape it was written for, then one `done=<hop>` line per
/// committed hop file. Appends are fsynced so a committed unit survives
/// the very next crash; a torn trailing line (crash mid-append) is
/// ignored on replay.
#[derive(Debug)]
pub(crate) struct Journal {
    path: PathBuf,
    file: Option<File>,
}

impl Journal {
    /// Starts a fresh journal for `dir`, truncating any stale one.
    pub(crate) fn create(dir: &Path, geometry: &str) -> Result<Self, DataIoError> {
        let path = dir.join(JOURNAL);
        let mut file = File::create(&path).map_err(|e| io_err(&path, &e))?;
        file.write_all(format!("{JOURNAL_HEADER}\ngeometry={geometry}\n").as_bytes())
            .map_err(|e| io_err(&path, &e))?;
        file.sync_all().map_err(|e| io_err(&path, &e))?;
        Ok(Journal {
            path,
            file: Some(file),
        })
    }

    /// Replays `dir`'s journal: returns the journal (reopened for
    /// append) and the hops it records as done. A missing journal, a
    /// header/geometry mismatch (the previous run had a different store
    /// shape), or an unreadable file all mean "nothing done" — the
    /// journal is recreated fresh. Malformed lines (torn appends, bit
    /// flips) are skipped; callers must still re-verify every returned
    /// hop against the bytes on disk before trusting it.
    pub(crate) fn resume(dir: &Path, geometry: &str) -> Result<(Self, Vec<usize>), DataIoError> {
        let path = dir.join(JOURNAL);
        let Ok(text) = fs::read_to_string(&path) else {
            return Ok((Journal::create(dir, geometry)?, Vec::new()));
        };
        let mut lines = text.lines();
        if lines.next() != Some(JOURNAL_HEADER)
            || lines.next() != Some(&format!("geometry={geometry}") as &str)
        {
            return Ok((Journal::create(dir, geometry)?, Vec::new()));
        }
        let mut done = Vec::new();
        for line in lines {
            if let Some(k) = line.strip_prefix("done=") {
                if let Ok(k) = k.parse::<usize>() {
                    done.push(k);
                }
            }
        }
        let file = OpenOptions::new()
            .append(true)
            .open(&path)
            .map_err(|e| io_err(&path, &e))?;
        Ok((
            Journal {
                path,
                file: Some(file),
            },
            done,
        ))
    }

    /// Appends and fsyncs a `done=<hop>` record. Checks the `journal`
    /// fault site; an injected torn append leaves a partial line that
    /// replay skips.
    pub(crate) fn record(&mut self, hop: usize) -> Result<(), DataIoError> {
        let Some(file) = self.file.as_mut() else {
            return Ok(());
        };
        let mut line = format!("done={hop}\n").into_bytes();
        if let Some(f) = fault::write_fault("journal", &self.path) {
            match f.kind {
                FaultKind::WriteErr => return Err(f.to_io_error().into()),
                FaultKind::Torn => {
                    let half = line.len() / 2;
                    file.write_all(&line[..half])
                        .map_err(|e| io_err(&self.path, &e))?;
                    let _ = file.sync_all();
                    return Err(f.to_io_error().into());
                }
                FaultKind::BitFlip => {
                    let (byte, bit) = f.flip_position(line.len());
                    line[byte] ^= 1u8 << bit;
                }
                FaultKind::ReadErr => {}
            }
        }
        file.write_all(&line).map_err(|e| io_err(&self.path, &e))?;
        file.sync_all().map_err(|e| io_err(&self.path, &e))?;
        Ok(())
    }

    /// Removes the journal — called after the manifest (the commit
    /// point) has landed; best-effort.
    pub(crate) fn remove(mut self) {
        self.file = None;
        let _ = fs::remove_file(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ppgnn-commit-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("fixture invariant holds");
        dir
    }

    #[test]
    fn atomic_write_replaces_contents_and_cleans_tmp() {
        let dir = tmp_dir("atomic");
        let path = dir.join("manifest.txt");
        write_bytes_atomic("manifest", &path, b"v1").expect("fixture invariant holds");
        assert_eq!(fs::read(&path).expect("fixture invariant holds"), b"v1");
        write_bytes_atomic("manifest", &path, b"v2-longer").expect("fixture invariant holds");
        assert_eq!(
            fs::read(&path).expect("fixture invariant holds"),
            b"v2-longer"
        );
        assert!(!tmp_path(&path).exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn journal_round_trips_and_tolerates_torn_tail() {
        let dir = tmp_dir("journal");
        let geometry = "2:8:4:3:f32:unit";
        let mut j = Journal::create(&dir, geometry).expect("fixture invariant holds");
        j.record(0).expect("fixture invariant holds");
        j.record(1).expect("fixture invariant holds");
        drop(j);

        // Simulate a crash mid-append: a trailing partial line.
        let path = dir.join(JOURNAL);
        let mut f = OpenOptions::new()
            .append(true)
            .open(&path)
            .expect("fixture invariant holds");
        f.write_all(b"done=").expect("fixture invariant holds");
        drop(f);

        let (_j, done) = Journal::resume(&dir, geometry).expect("fixture invariant holds");
        assert_eq!(done, vec![0, 1]);

        // A different geometry invalidates the journal entirely.
        let (_j, done) =
            Journal::resume(&dir, "3:9:4:3:f32:other").expect("fixture invariant holds");
        assert_eq!(done, Vec::<usize>::new());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn journal_remove_deletes_the_file() {
        let dir = tmp_dir("journal-rm");
        let j = Journal::create(&dir, "g").expect("fixture invariant holds");
        assert!(dir.join(JOURNAL).exists());
        j.remove();
        assert!(!dir.join(JOURNAL).exists());
        let _ = fs::remove_dir_all(&dir);
    }
}
