//! Asynchronous, double-buffered hop persistence.
//!
//! The streaming preprocessor used to call [`FeatureStoreWriter::write_hop`]
//! synchronously on the compute thread: every finished hop blocked
//! diffusion until its bytes hit storage — serialized compute and I/O,
//! exactly the pipeline bubble the generation-2 *loader* already removed on
//! the read side. [`AsyncHopWriter`] mirrors that design for writes: a
//! dedicated writer thread drains a **bounded** channel of finished hop
//! matrices, so hop `r + 1` diffusion overlaps hop `r` I/O, and the channel
//! depth (default [`DEFAULT_WRITER_QUEUE`], the double buffer) bounds how
//! many extra hop matrices can be in flight — backpressure, not unbounded
//! queuing, when storage is slower than compute.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ppgnn_tensor::{knobs, Matrix};

use crate::{DataIoError, FeatureStore, FeatureStoreWriter, StoreMeta};

/// Telemetry mirrors of the per-writer [`WriterStats`], so traced runs
/// see write-side backpressure in the metrics registry.
static WRITER_SUBMIT_BLOCK_NS: ppgnn_telemetry::Counter =
    ppgnn_telemetry::Counter::new("writer.submit_block_ns");
static WRITER_QUEUE_HWM: ppgnn_telemetry::Counter =
    ppgnn_telemetry::Counter::new("writer.queue_hwm");
static WRITER_RETRIES: ppgnn_telemetry::Counter = ppgnn_telemetry::Counter::new("writer.retries");
static WRITER_LATCHED_FAILURES: ppgnn_telemetry::Counter =
    ppgnn_telemetry::Counter::new("writer.latched_failures");

/// Default number of retries for a transiently failing hop write when
/// `PPGNN_WRITE_RETRIES` is unset.
const DEFAULT_WRITE_RETRIES: usize = 2;

/// Base backoff before the first retry; doubles per attempt (capped).
const RETRY_BACKOFF_BASE_MS: u64 = 1;

/// Default bounded-channel depth: two in-flight hop matrices — the
/// write-side software double buffer.
pub const DEFAULT_WRITER_QUEUE: usize = 2;

/// Queue-pressure accounting for one [`AsyncHopWriter`] — the signal the
/// original writer dropped entirely. A saturated queue (`queue_hwm` at
/// capacity, growing `submit_block_ns`) means storage is the bottleneck
/// and diffusion is stalling on write backpressure; an idle queue means
/// the async writer fully hides I/O behind compute.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct WriterStats {
    /// Hop matrices accepted by [`AsyncHopWriter::submit`].
    pub submitted: u64,
    /// High-water mark of in-flight hop matrices (queued plus the one
    /// entering the queue), observed at submit time.
    pub queue_hwm: usize,
    /// Total nanoseconds `submit` spent blocked on a full queue.
    pub submit_block_ns: u64,
    /// Transient write failures absorbed by retry-with-backoff (also
    /// exported as the `writer.retries` telemetry counter).
    pub retries: u64,
}

/// Shared mutable stats cells: the producer bumps them in `submit`, the
/// writer thread decrements the in-flight depth as it drains.
#[derive(Debug, Default)]
struct StatsCells {
    depth: AtomicUsize,
    queue_hwm: AtomicUsize,
    submit_block_ns: AtomicU64,
    submitted: AtomicU64,
    retries: AtomicU64,
}

/// A [`FeatureStoreWriter`] running on its own thread behind a bounded
/// channel.
///
/// [`AsyncHopWriter::submit`] hands a finished hop matrix to the writer
/// thread, blocking only when the queue is full. The first write failure is
/// **latched**: later submissions are drained and dropped (so the producer
/// never blocks on a dead store), [`AsyncHopWriter::submit`] starts failing
/// fast, and the underlying error is surfaced by
/// [`AsyncHopWriter::finish`] — which otherwise verifies completeness and
/// opens the store, exactly like the synchronous
/// [`FeatureStoreWriter::finish`].
#[derive(Debug)]
pub struct AsyncHopWriter {
    tx: Option<SyncSender<(usize, Matrix)>>,
    worker: Option<JoinHandle<Result<FeatureStoreWriter, DataIoError>>>,
    failed: Arc<AtomicBool>,
    stats: Arc<StatsCells>,
    /// Snapshot of the wrapped writer's journal-resumed hops, so
    /// resume-aware producers can skip recomputing them.
    resumed: Vec<bool>,
}

impl AsyncHopWriter {
    /// Creates the store directory and starts the writer thread with a
    /// bounded queue of `queue_depth` hop matrices (clamped to at
    /// least 1).
    ///
    /// # Errors
    ///
    /// Propagates [`FeatureStoreWriter::create`] failures.
    pub fn create(
        dir: impl AsRef<std::path::Path>,
        meta: StoreMeta,
        queue_depth: usize,
    ) -> Result<Self, DataIoError> {
        Ok(Self::wrap(
            FeatureStoreWriter::create(dir, meta)?,
            queue_depth,
        ))
    }

    /// Like [`AsyncHopWriter::create`], but replays an interrupted
    /// run's completed-units journal via
    /// [`FeatureStoreWriter::create_or_resume`];
    /// [`AsyncHopWriter::resumed_hops`] reports which hops need no
    /// resubmission.
    ///
    /// # Errors
    ///
    /// Propagates [`FeatureStoreWriter::create_or_resume`] failures.
    pub fn create_or_resume(
        dir: impl AsRef<std::path::Path>,
        meta: StoreMeta,
        queue_depth: usize,
    ) -> Result<Self, DataIoError> {
        Ok(Self::wrap(
            FeatureStoreWriter::create_or_resume(dir, meta)?,
            queue_depth,
        ))
    }

    /// Wraps an existing synchronous writer in a writer thread.
    ///
    /// Transient I/O failures in a hop write are retried with
    /// exponential backoff up to `PPGNN_WRITE_RETRIES` times (default
    /// 2) before latching — shape/range errors are never retried, they
    /// latch immediately.
    pub fn wrap(writer: FeatureStoreWriter, queue_depth: usize) -> Self {
        let retry_budget =
            knobs::usize_value(knobs::WRITE_RETRIES).unwrap_or(DEFAULT_WRITE_RETRIES);
        let resumed = writer.resumed_hops().to_vec();
        let failed = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&failed);
        let stats = Arc::new(StatsCells::default());
        let drain_stats = Arc::clone(&stats);
        let (tx, rx) = sync_channel::<(usize, Matrix)>(queue_depth.max(1));
        let worker = std::thread::Builder::new()
            .name("ppgnn-hop-writer".into())
            .spawn(move || {
                let mut writer = writer;
                let mut first_err: Option<DataIoError> = None;
                while let Ok((k, features)) = rx.recv() {
                    drain_stats.depth.fetch_sub(1, Ordering::AcqRel);
                    if first_err.is_some() {
                        // Latched failure: drain so producers never block
                        // on a queue nobody is emptying.
                        continue;
                    }
                    if let Err(e) =
                        write_hop_with_retry(&mut writer, k, &features, retry_budget, &drain_stats)
                    {
                        flag.store(true, Ordering::Release);
                        WRITER_LATCHED_FAILURES.add(1);
                        first_err = Some(e);
                    }
                }
                match first_err {
                    Some(e) => Err(e),
                    None => Ok(writer),
                }
            })
            .expect("failed to spawn hop-writer thread");
        AsyncHopWriter {
            tx: Some(tx),
            worker: Some(worker),
            failed,
            stats,
            resumed,
        }
    }

    /// Which hops the underlying writer replayed from its journal (all
    /// `false` unless built via [`AsyncHopWriter::create_or_resume`]).
    /// Submitting one of these again is harmless — identical bytes are
    /// rewritten — but skipping them is what makes resume cheap.
    pub fn resumed_hops(&self) -> &[bool] {
        &self.resumed
    }

    /// Snapshot of the queue-pressure stats accumulated so far.
    pub fn stats(&self) -> WriterStats {
        WriterStats {
            submitted: self.stats.submitted.load(Ordering::Relaxed),
            queue_hwm: self.stats.queue_hwm.load(Ordering::Relaxed),
            submit_block_ns: self.stats.submit_block_ns.load(Ordering::Relaxed),
            retries: self.stats.retries.load(Ordering::Relaxed),
        }
    }

    /// Queues hop `k` for writing, blocking while the bounded queue is
    /// full (write backpressure).
    ///
    /// Takes the matrix by value: the bytes in flight belong to the writer
    /// thread, which is what lets the compute thread reuse or drop its own
    /// buffers immediately.
    ///
    /// # Errors
    ///
    /// Fails fast once a previous write has failed (or the writer thread
    /// died); the underlying cause is reported by
    /// [`AsyncHopWriter::finish`].
    pub fn submit(&mut self, k: usize, features: Matrix) -> Result<(), DataIoError> {
        if self.failed.load(Ordering::Acquire) {
            return Err(DataIoError::Io(
                "async hop writer already failed; finish() reports the cause".into(),
            ));
        }
        let tx = self
            .tx
            .as_ref()
            .ok_or_else(|| DataIoError::Io("async hop writer already finished".into()))?;
        let depth = self.stats.depth.fetch_add(1, Ordering::AcqRel) + 1;
        self.stats.queue_hwm.fetch_max(depth, Ordering::Relaxed);
        let sent = match tx.try_send((k, features)) {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(payload)) => {
                // Queue full: storage is behind compute. Fall back to the
                // blocking send and charge the wait to `submit_block_ns`.
                let t0 = Instant::now();
                let res = tx.send(payload);
                let blocked = t0.elapsed().as_nanos() as u64;
                self.stats
                    .submit_block_ns
                    .fetch_add(blocked, Ordering::Relaxed);
                WRITER_SUBMIT_BLOCK_NS.add(blocked);
                res.map_err(|_| ())
            }
            Err(TrySendError::Disconnected(_)) => Err(()),
        };
        if sent.is_err() {
            self.stats.depth.fetch_sub(1, Ordering::AcqRel);
            return Err(DataIoError::Io("hop-writer thread terminated early".into()));
        }
        self.stats.submitted.fetch_add(1, Ordering::Relaxed);
        WRITER_QUEUE_HWM.record_max(depth as u64);
        Ok(())
    }

    /// `true` once a write has failed (or the writer thread died):
    /// [`AsyncHopWriter::submit`] is fail-fast from then on, and
    /// [`AsyncHopWriter::take_failure`] can retrieve the cause.
    pub fn has_failed(&self) -> bool {
        self.failed.load(Ordering::Acquire) || self.worker.as_ref().is_none_or(|w| w.is_finished())
    }

    /// Consumes the writer and returns the latched failure, if any —
    /// for callers abandoning a run mid-way (a failed `submit`) that
    /// still want the underlying cause rather than the fail-fast
    /// placeholder. Returns `None` when no write ever failed (the
    /// abandoned, incomplete store is left behind either way).
    pub fn take_failure(mut self) -> Option<DataIoError> {
        drop(self.tx.take());
        let worker = self.worker.take()?;
        match worker.join() {
            Ok(Ok(_)) => None,
            Ok(Err(e)) => Some(e),
            Err(_) => Some(DataIoError::Io("hop-writer thread panicked".into())),
        }
    }

    /// Closes the queue, joins the writer thread, and finishes the store.
    ///
    /// # Errors
    ///
    /// Surfaces the latched first write error if any write failed, a
    /// completeness error if hops are missing, or open-time validation
    /// failures — the same contract as [`FeatureStoreWriter::finish`].
    pub fn finish(mut self) -> Result<FeatureStore, DataIoError> {
        drop(self.tx.take()); // close the channel; the worker drains & exits
        let worker = self.worker.take().expect("finish called once");
        let writer = worker
            .join()
            .map_err(|_| DataIoError::Io("hop-writer thread panicked".into()))??;
        writer.finish()
    }
}

/// One hop write with bounded retry-with-backoff. Only
/// [`DataIoError::Io`] — the transient class (full disk coming back,
/// NFS hiccups, injected write faults) — is retried; shape and range
/// errors are deterministic caller bugs and latch immediately. The
/// write itself is an atomic commit, so a retry after a mid-write
/// failure starts from a clean slate.
fn write_hop_with_retry(
    writer: &mut FeatureStoreWriter,
    k: usize,
    features: &Matrix,
    retry_budget: usize,
    stats: &StatsCells,
) -> Result<(), DataIoError> {
    let mut attempt = 0usize;
    loop {
        match writer.write_hop(k, features) {
            Ok(()) => return Ok(()),
            Err(e @ DataIoError::Io(_)) if attempt < retry_budget => {
                attempt += 1;
                stats.retries.fetch_add(1, Ordering::Relaxed);
                WRITER_RETRIES.add(1);
                let _ = e;
                std::thread::sleep(Duration::from_millis(
                    RETRY_BACKOFF_BASE_MS << (attempt - 1).min(6),
                ));
            }
            Err(e) => return Err(e),
        }
    }
}

impl Drop for AsyncHopWriter {
    fn drop(&mut self) {
        // Abandoned without finish() (e.g. diffusion errored): close the
        // queue and join so no detached thread outlives the store handle.
        drop(self.tx.take());
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ppgnn-async-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn meta(rows: usize, cols: usize, hops: usize) -> StoreMeta {
        StoreMeta {
            dataset: "async".into(),
            num_hops: hops,
            rows,
            cols,
            chunk_size: 4,
            dtype: ppgnn_tensor::StoreDtype::F32,
        }
    }

    fn hop_matrix(k: usize, rows: usize, cols: usize) -> Matrix {
        Matrix::from_fn(rows, cols, move |r, c| (k * 1000 + r * 10 + c) as f32)
    }

    #[test]
    fn async_store_is_byte_identical_to_sync_store() {
        let sync_dir = temp_dir("sync");
        let async_dir = temp_dir("queued");
        let mut sync_w = FeatureStoreWriter::create(&sync_dir, meta(10, 3, 3)).unwrap();
        let mut async_w = AsyncHopWriter::create(&async_dir, meta(10, 3, 3), 2).unwrap();
        for k in 0..3 {
            let m = hop_matrix(k, 10, 3);
            sync_w.write_hop(k, &m).unwrap();
            async_w.submit(k, m).unwrap();
        }
        sync_w.finish().unwrap();
        let store = async_w.finish().unwrap();
        assert_eq!(store.meta().num_hops, 3);
        for k in 0..3 {
            let a = std::fs::read(sync_dir.join(format!("hop_{k}.ppgt"))).unwrap();
            let b = std::fs::read(async_dir.join(format!("hop_{k}.ppgt"))).unwrap();
            assert_eq!(a, b, "hop {k} bytes differ between sync and async path");
        }
        std::fs::remove_dir_all(&sync_dir).unwrap();
        std::fs::remove_dir_all(&async_dir).unwrap();
    }

    #[test]
    fn bad_shape_error_is_latched_and_surfaced_at_finish() {
        let dir = temp_dir("badshape");
        let mut w = AsyncHopWriter::create(&dir, meta(10, 3, 2), 1).unwrap();
        w.submit(0, Matrix::zeros(5, 3)).unwrap(); // wrong row count
                                                   // The failure latches; eventually submit fails fast (the writer
                                                   // thread needs a moment to observe the bad hop, so poll).
        let mut fast_failed = false;
        for _ in 0..1000 {
            match w.submit(1, hop_matrix(1, 10, 3)) {
                Err(_) => {
                    fast_failed = true;
                    break;
                }
                Ok(()) => std::thread::sleep(std::time::Duration::from_millis(1)),
            }
        }
        assert!(fast_failed, "submit should fail fast after a write error");
        let err = w.finish().unwrap_err();
        assert!(matches!(err, DataIoError::BadManifest(_)), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_hops_fail_finish_like_the_sync_writer() {
        let dir = temp_dir("missing");
        let mut w = AsyncHopWriter::create(&dir, meta(6, 2, 3), 2).unwrap();
        w.submit(0, hop_matrix(0, 6, 2)).unwrap();
        let err = w.finish().unwrap_err();
        assert!(err.to_string().contains("never written"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn drop_without_finish_joins_the_worker() {
        let dir = temp_dir("dropped");
        let mut w = AsyncHopWriter::create(&dir, meta(6, 2, 2), 1).unwrap();
        w.submit(0, hop_matrix(0, 6, 2)).unwrap();
        drop(w); // must join cleanly, not hang or leak the thread
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn slow_writer_records_block_time_and_queue_high_water_mark() {
        let dir = temp_dir("slowwriter");
        // Depth-1 queue with hop matrices large enough (~1 MiB each) that
        // disk writes trail a tight submit loop: some submit must find the
        // queue full, take the blocking path, and accumulate block time.
        let (rows, cols, hops) = (4096, 64, 8);
        let mut w = AsyncHopWriter::create(&dir, meta(rows, cols, hops), 1).unwrap();
        let matrices: Vec<Matrix> = (0..hops).map(|k| hop_matrix(k, rows, cols)).collect();
        for (k, m) in matrices.into_iter().enumerate() {
            w.submit(k, m).unwrap();
        }
        let stats = w.stats();
        assert_eq!(stats.submitted, hops as u64);
        assert!(
            stats.queue_hwm >= 1,
            "at least one hop must have been observed in flight"
        );
        assert!(
            stats.submit_block_ns > 0,
            "a depth-1 queue behind {hops} ~1MiB hops must block at least once"
        );
        let store = w.finish().unwrap();
        assert_eq!(store.meta().num_hops, hops);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn transient_write_faults_are_retried_and_counted() {
        let dir = temp_dir("retry");
        // A one-shot injected write error on the second hop write: the
        // retry (default budget 2) must absorb it and the store must
        // complete. Scope the plan to this test's directory so parallel
        // tests in this binary can't cross-fire.
        crate::fault::install(
            crate::fault::FaultPlan::one_shot("hop", crate::fault::FaultKind::WriteErr, 2)
                .scoped(&dir.to_string_lossy()),
        );
        let mut w = AsyncHopWriter::create(&dir, meta(8, 3, 3), 2).unwrap();
        for k in 0..3 {
            w.submit(k, hop_matrix(k, 8, 3)).unwrap();
        }
        // The retry happens on the writer thread; wait for it to land
        // before snapshotting (finish() consumes the handle).
        for _ in 0..1000 {
            if w.stats().retries >= 1 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let stats = w.stats();
        let store = w.finish().unwrap();
        crate::fault::clear();
        assert_eq!(store.meta().num_hops, 3);
        assert_eq!(stats.retries, 1, "{stats:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resumed_async_writer_reports_journaled_hops() {
        let dir = temp_dir("resume");
        let mut w = AsyncHopWriter::create(&dir, meta(8, 3, 3), 2).unwrap();
        w.submit(1, hop_matrix(1, 8, 3)).unwrap();
        drop(w); // "crash" with only hop 1 committed

        let mut w = AsyncHopWriter::create_or_resume(&dir, meta(8, 3, 3), 2).unwrap();
        assert_eq!(w.resumed_hops(), &[false, true, false]);
        for k in [0, 2] {
            w.submit(k, hop_matrix(k, 8, 3)).unwrap();
        }
        let store = w.finish().unwrap();
        assert_eq!(store.meta().num_hops, 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bounded_queue_applies_backpressure_without_deadlock() {
        let dir = temp_dir("backpressure");
        let mut w = AsyncHopWriter::create(&dir, meta(64, 8, 16), 1).unwrap();
        // Submit far more hops than the queue depth; every submit must
        // complete (blocking at most until the writer drains one slot).
        for k in 0..16 {
            w.submit(k, hop_matrix(k, 64, 8)).unwrap();
        }
        let store = w.finish().unwrap();
        assert_eq!(store.meta().num_hops, 16);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
