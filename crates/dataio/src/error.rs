use std::error::Error;
use std::fmt;

use ppgnn_tensor::TensorError;

/// Errors from the feature store.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DataIoError {
    /// Underlying filesystem error (path + message).
    Io(String),
    /// The manifest file is missing a key or malformed.
    BadManifest(String),
    /// A request referenced a hop or row outside the stored range.
    OutOfRange(String),
    /// A stored matrix failed to parse.
    Corrupt(String),
}

impl fmt::Display for DataIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataIoError::Io(m) => write!(f, "feature-store i/o failure: {m}"),
            DataIoError::BadManifest(m) => write!(f, "bad manifest: {m}"),
            DataIoError::OutOfRange(m) => write!(f, "request out of range: {m}"),
            DataIoError::Corrupt(m) => write!(f, "corrupt store: {m}"),
        }
    }
}

impl Error for DataIoError {}

impl From<std::io::Error> for DataIoError {
    fn from(e: std::io::Error) -> Self {
        DataIoError::Io(e.to_string())
    }
}

impl From<TensorError> for DataIoError {
    fn from(e: TensorError) -> Self {
        DataIoError::Corrupt(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_preserve_messages() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: DataIoError = io.into();
        assert!(e.to_string().contains("gone"));
        let t: DataIoError = TensorError::BadHeader("x".into()).into();
        assert!(matches!(t, DataIoError::Corrupt(_)));
    }
}
