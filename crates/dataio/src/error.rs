use std::error::Error;
use std::fmt;
use std::path::Path;

use ppgnn_tensor::TensorError;

/// Located corruption report: what failed to parse or verify, and —
/// when known — which file, hop, and chunk it sits in, so a flipped bit
/// in a terabyte store points at one re-diffusable unit instead of a
/// shape mismatch deep inside an epoch.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CorruptError {
    /// What was wrong with the bytes.
    pub detail: String,
    /// Path of the offending file, when the failure is file-scoped.
    pub path: Option<String>,
    /// Hop index within the store, when known.
    pub hop: Option<usize>,
    /// Chunk index within the hop, when the failure is chunk-scoped
    /// (checksum mismatches always are).
    pub chunk: Option<usize>,
}

impl CorruptError {
    /// A report with only a detail message; context is attached with the
    /// `with_*` builders as it becomes known up the call stack.
    pub fn new(detail: impl Into<String>) -> Self {
        CorruptError {
            detail: detail.into(),
            ..CorruptError::default()
        }
    }

    /// Attaches the offending file path.
    #[must_use]
    pub fn with_path(mut self, path: &Path) -> Self {
        self.path = Some(path.display().to_string());
        self
    }

    /// Attaches the hop index.
    #[must_use]
    pub fn with_hop(mut self, hop: usize) -> Self {
        self.hop = Some(hop);
        self
    }

    /// Attaches the chunk index.
    #[must_use]
    pub fn with_chunk(mut self, chunk: usize) -> Self {
        self.chunk = Some(chunk);
        self
    }
}

impl fmt::Display for CorruptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.detail)?;
        if self.path.is_some() || self.hop.is_some() || self.chunk.is_some() {
            write!(f, " [")?;
            let mut sep = "";
            if let Some(p) = &self.path {
                write!(f, "path={p}")?;
                sep = ", ";
            }
            if let Some(h) = self.hop {
                write!(f, "{sep}hop={h}")?;
                sep = ", ";
            }
            if let Some(c) = self.chunk {
                write!(f, "{sep}chunk={c}")?;
            }
            write!(f, "]")?;
        }
        Ok(())
    }
}

/// Errors from the feature store.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DataIoError {
    /// Underlying filesystem error (path + message).
    Io(String),
    /// The manifest file is missing a key or malformed.
    BadManifest(String),
    /// A request referenced a hop or row outside the stored range.
    OutOfRange(String),
    /// Stored bytes failed to parse or verify, with location context.
    Corrupt(CorruptError),
}

impl DataIoError {
    /// A [`DataIoError::Corrupt`] with only a detail message.
    pub fn corrupt(detail: impl Into<String>) -> Self {
        DataIoError::Corrupt(CorruptError::new(detail))
    }
}

impl fmt::Display for DataIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataIoError::Io(m) => write!(f, "feature-store i/o failure: {m}"),
            DataIoError::BadManifest(m) => write!(f, "bad manifest: {m}"),
            DataIoError::OutOfRange(m) => write!(f, "request out of range: {m}"),
            DataIoError::Corrupt(c) => write!(f, "corrupt store: {c}"),
        }
    }
}

impl Error for DataIoError {}

impl From<std::io::Error> for DataIoError {
    fn from(e: std::io::Error) -> Self {
        DataIoError::Io(e.to_string())
    }
}

impl From<TensorError> for DataIoError {
    fn from(e: TensorError) -> Self {
        DataIoError::Corrupt(CorruptError::new(e.to_string()))
    }
}

impl From<CorruptError> for DataIoError {
    fn from(c: CorruptError) -> Self {
        DataIoError::Corrupt(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_preserve_messages() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: DataIoError = io.into();
        assert!(e.to_string().contains("gone"));
        let t: DataIoError = TensorError::BadHeader("x".into()).into();
        assert!(matches!(t, DataIoError::Corrupt(_)));
    }

    #[test]
    fn corrupt_display_carries_location_context() {
        let c = CorruptError::new("chunk checksum mismatch")
            .with_path(Path::new("/s/hop_1.ppgt"))
            .with_hop(1)
            .with_chunk(3);
        let msg = DataIoError::Corrupt(c).to_string();
        assert!(msg.contains("chunk checksum mismatch"), "{msg}");
        assert!(msg.contains("path=/s/hop_1.ppgt"), "{msg}");
        assert!(msg.contains("hop=1"), "{msg}");
        assert!(msg.contains("chunk=3"), "{msg}");

        // Context-free reports stay bare: no empty bracket suffix.
        let bare = CorruptError::new("oops").to_string();
        assert_eq!(bare, "oops");
    }
}
