//! Sharded feature stores: one [`FeatureStore`] per graph partition under
//! a single manifest.
//!
//! Partition-parallel preprocessing writes each partition's training rows
//! through its own [`AsyncHopWriter`] into its own store directory
//! (`part_<i>/`), so hop persistence fans out across files instead of
//! serializing on one writer — and training-time chunk reads fan out the
//! same way on the serving side. The root directory carries a
//! [`ShardedStoreManifest`] (`sharded.txt`) plus one global-row sidecar
//! per partition (`part_<i>/rows.ppgt`, the store's local row → global
//! training row mapping), which is what lets [`ShardedFeatureStore`]
//! resolve a **global** row id to `(partition, local row)` and serve reads
//! that are byte-identical to the single-store layout.
//!
//! Global training-row order is preserved *within* each partition: store
//! `p`'s local row `j` is the `j`-th training row (in global order) owned
//! by partition `p`. A single-partition sharded store is therefore
//! byte-identical, hop file for hop file, to the unsharded layout.

use std::fs;
use std::path::{Path, PathBuf};

use ppgnn_tensor::{io as tio, Matrix};

use crate::error::CorruptError;
use crate::{
    commit, AccessPath, AsyncHopWriter, DataIoError, FeatureStore, IoCounters, StoreMeta,
    WriterStats,
};

const SHARDED_MANIFEST: &str = "sharded.txt";
const ROWS_SIDECAR: &str = "rows.ppgt";

fn part_dir(dir: &Path, p: usize) -> PathBuf {
    dir.join(format!("part_{p}"))
}

/// Encodes global row ids as a `2 × n` matrix of exact 16-bit halves
/// (row 0 = `id & 0xffff`, row 1 = `id >> 16`). A single-f32 encoding
/// would silently lose integer precision past 2²⁴ rows; the split keeps
/// every half below 2¹⁶ ≪ 2²⁴, so stores scale to 2⁴⁰ rows exactly.
fn encode_rows_sidecar(rows: &[usize]) -> Matrix {
    Matrix::from_fn(2, rows.len(), |r, c| {
        if r == 0 {
            (rows[c] & 0xffff) as f32
        } else {
            (rows[c] >> 16) as f32
        }
    })
}

fn decode_rows_sidecar(m: &Matrix, expected: usize) -> Result<Vec<usize>, CorruptError> {
    if m.shape() != (2, expected) {
        return Err(CorruptError::new(format!(
            "rows sidecar shape {:?} does not match {expected} rows",
            m.shape()
        )));
    }
    Ok((0..expected)
        .map(|c| (m.get(0, c) as usize) | ((m.get(1, c) as usize) << 16))
        .collect())
}

/// Manifest of a sharded store: the logical (concatenated) geometry plus
/// the per-partition row counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardedStoreManifest {
    /// Logical store geometry — `rows` is the total across partitions.
    pub meta: StoreMeta,
    /// Rows held by each partition store, in partition order.
    pub partition_rows: Vec<usize>,
}

impl ShardedStoreManifest {
    /// Number of partition stores.
    pub fn num_partitions(&self) -> usize {
        self.partition_rows.len()
    }

    fn to_text(&self) -> String {
        let mut text = format!(
            "dataset={}\nnum_hops={}\nrows={}\ncols={}\nchunk_size={}\nnum_partitions={}\n",
            self.meta.dataset,
            self.meta.num_hops,
            self.meta.rows,
            self.meta.cols,
            self.meta.chunk_size,
            self.partition_rows.len(),
        );
        // Like the per-store manifest, the dtype key is only written for
        // compressed encodings, keeping default manifests byte-identical
        // to pre-dtype stores.
        if !self.meta.dtype.is_f32() {
            text.push_str(&format!("dtype={}\n", self.meta.dtype.name()));
        }
        for (p, rows) in self.partition_rows.iter().enumerate() {
            text.push_str(&format!("partition_{p}_rows={rows}\n"));
        }
        text
    }

    fn from_text(text: &str) -> Result<Self, DataIoError> {
        let mut fields = std::collections::HashMap::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let (k, v) = line
                .split_once('=')
                .ok_or_else(|| DataIoError::BadManifest(format!("bad line: {line}")))?;
            fields.insert(k.to_string(), v.to_string());
        }
        let get = |key: &str| -> Result<String, DataIoError> {
            fields
                .get(key)
                .cloned()
                .ok_or_else(|| DataIoError::BadManifest(format!("missing key {key}")))
        };
        let num = |key: &str| -> Result<usize, DataIoError> {
            get(key)?
                .parse::<usize>()
                .map_err(|_| DataIoError::BadManifest(format!("bad value for {key}")))
        };
        let num_partitions = num("num_partitions")?;
        let partition_rows = (0..num_partitions)
            .map(|p| num(&format!("partition_{p}_rows")))
            .collect::<Result<Vec<usize>, _>>()?;
        let dtype = match fields.get("dtype") {
            None => ppgnn_tensor::StoreDtype::F32,
            Some(v) => ppgnn_tensor::StoreDtype::parse(v)
                .ok_or_else(|| DataIoError::BadManifest(format!("unknown store dtype: {v}")))?,
        };
        let meta = StoreMeta {
            dataset: get("dataset")?,
            num_hops: num("num_hops")?,
            rows: num("rows")?,
            cols: num("cols")?,
            chunk_size: num("chunk_size")?,
            dtype,
        };
        if partition_rows.iter().sum::<usize>() != meta.rows {
            return Err(DataIoError::BadManifest(format!(
                "partition rows {:?} do not sum to {} total rows",
                partition_rows, meta.rows
            )));
        }
        Ok(ShardedStoreManifest {
            meta,
            partition_rows,
        })
    }
}

/// Writes a sharded store: one [`AsyncHopWriter`] per partition, all
/// running concurrently on their own writer threads.
#[derive(Debug)]
pub struct ShardedStoreWriter {
    dir: PathBuf,
    manifest: ShardedStoreManifest,
    writers: Vec<AsyncHopWriter>,
}

impl ShardedStoreWriter {
    /// Creates the per-partition store directories and row sidecars, and
    /// one async writer (bounded queue `queue_depth`) per partition. The
    /// root manifest (`sharded.txt`) is only committed at
    /// [`ShardedStoreWriter::finish`] — it is the commit point.
    ///
    /// `meta` describes the **logical** store (`meta.rows` = total training
    /// rows); `global_rows[p]` lists the global row ids partition `p`
    /// holds, in the local row order its hop matrices will be written in.
    /// The lists must be disjoint and cover `0..meta.rows` exactly.
    ///
    /// # Errors
    ///
    /// Fails on inconsistent row assignments or filesystem errors.
    pub fn create(
        dir: impl AsRef<Path>,
        meta: StoreMeta,
        global_rows: &[Vec<usize>],
        queue_depth: usize,
    ) -> Result<Self, DataIoError> {
        Self::build(dir, meta, global_rows, queue_depth, false)
    }

    /// Like [`ShardedStoreWriter::create`], but resumes each partition's
    /// writer from its completed-units journal (see
    /// [`AsyncHopWriter::create_or_resume`]): `(partition, hop)` units a
    /// previous interrupted run already committed are reported by
    /// [`ShardedStoreWriter::resumed_hops`] and need not be resubmitted.
    ///
    /// # Errors
    ///
    /// Fails on inconsistent row assignments or filesystem errors.
    pub fn create_or_resume(
        dir: impl AsRef<Path>,
        meta: StoreMeta,
        global_rows: &[Vec<usize>],
        queue_depth: usize,
    ) -> Result<Self, DataIoError> {
        Self::build(dir, meta, global_rows, queue_depth, true)
    }

    fn build(
        dir: impl AsRef<Path>,
        meta: StoreMeta,
        global_rows: &[Vec<usize>],
        queue_depth: usize,
        resume: bool,
    ) -> Result<Self, DataIoError> {
        let dir = dir.as_ref().to_path_buf();
        let mut all: Vec<usize> = global_rows.iter().flatten().copied().collect();
        all.sort_unstable();
        if all.len() != meta.rows || all.iter().enumerate().any(|(i, &r)| i != r) {
            return Err(DataIoError::BadManifest(format!(
                "partition row lists must cover 0..{} exactly once",
                meta.rows
            )));
        }
        if meta.chunk_size == 0 {
            return Err(DataIoError::BadManifest(
                "chunk_size must be positive".into(),
            ));
        }
        fs::create_dir_all(&dir)?;
        let manifest = ShardedStoreManifest {
            partition_rows: global_rows.iter().map(|g| g.len()).collect(),
            meta,
        };
        let mut writers = Vec::with_capacity(global_rows.len());
        for (p, rows) in global_rows.iter().enumerate() {
            let sub = part_dir(&dir, p);
            let part_meta = StoreMeta {
                dataset: manifest.meta.dataset.clone(),
                num_hops: manifest.meta.num_hops,
                rows: rows.len(),
                cols: manifest.meta.cols,
                chunk_size: manifest.meta.chunk_size,
                dtype: manifest.meta.dtype,
            };
            let writer = if resume {
                AsyncHopWriter::create_or_resume(&sub, part_meta, queue_depth)?
            } else {
                AsyncHopWriter::create(&sub, part_meta, queue_depth)?
            };
            let sidecar = encode_rows_sidecar(rows);
            let mut buf = Vec::new();
            tio::write_matrix(&mut buf, &sidecar).map_err(|e| DataIoError::Io(e.to_string()))?;
            commit::write_bytes_atomic("sidecar", &sub.join(ROWS_SIDECAR), &buf)?;
            writers.push(writer);
        }
        Ok(ShardedStoreWriter {
            dir,
            manifest,
            writers,
        })
    }

    /// Hops of partition `p` already committed by a previous interrupted
    /// run (all-`false` unless built via
    /// [`ShardedStoreWriter::create_or_resume`]). Resumed hops need not
    /// be resubmitted; their bytes are already on disk and verified.
    pub fn resumed_hops(&self, p: usize) -> &[bool] {
        self.writers[p].resumed_hops()
    }

    /// The manifest being written.
    pub fn manifest(&self) -> &ShardedStoreManifest {
        &self.manifest
    }

    /// Queues hop `k` of partition `p` for writing (blocking only while
    /// that partition's bounded queue is full).
    ///
    /// # Errors
    ///
    /// Fails fast once the partition's writer has latched a failure; the
    /// cause surfaces at [`ShardedStoreWriter::finish`] /
    /// [`ShardedStoreWriter::take_failure`].
    pub fn submit(&mut self, p: usize, k: usize, features: Matrix) -> Result<(), DataIoError> {
        let writer = self.writers.get_mut(p).ok_or_else(|| {
            DataIoError::OutOfRange(format!(
                "partition {p} out of range ({} partitions)",
                self.manifest.num_partitions()
            ))
        })?;
        writer.submit(k, features)
    }

    /// Queue-pressure stats aggregated across the per-partition writer
    /// threads: submissions and block time summed, high-water mark taken
    /// as the max over partitions.
    pub fn writer_stats(&self) -> WriterStats {
        let mut total = WriterStats::default();
        for w in &self.writers {
            let s = w.stats();
            total.submitted += s.submitted;
            total.submit_block_ns += s.submit_block_ns;
            total.queue_hwm = total.queue_hwm.max(s.queue_hwm);
        }
        total
    }

    /// Consumes the writer and returns the first latched write failure
    /// across partitions, if any — the abort-path counterpart of
    /// [`ShardedStoreWriter::finish`], mirroring
    /// [`AsyncHopWriter::take_failure`].
    pub fn take_failure(self) -> Option<DataIoError> {
        self.writers.into_iter().find_map(|w| w.take_failure())
    }

    /// Finishes every partition writer, then atomically commits the root
    /// manifest (`sharded.txt`) — the sharded store's commit point, so an
    /// interrupted run never leaves a root manifest pointing at
    /// incomplete partition stores — and opens the sharded store.
    ///
    /// # Errors
    ///
    /// Surfaces the first partition's latched write error, completeness
    /// failure, or open-time validation failure.
    pub fn finish(self) -> Result<ShardedFeatureStore, DataIoError> {
        for writer in self.writers {
            writer.finish()?;
        }
        commit::write_bytes_atomic(
            "sharded-manifest",
            &self.dir.join(SHARDED_MANIFEST),
            self.manifest.to_text().as_bytes(),
        )?;
        ShardedFeatureStore::open(&self.dir)
    }
}

/// Read handle over a sharded store directory: the manifest, one
/// [`FeatureStore`] per partition, and the global-row mapping.
#[derive(Debug)]
pub struct ShardedFeatureStore {
    manifest: ShardedStoreManifest,
    stores: Vec<FeatureStore>,
    /// `global_rows[p][j]` = global row id of partition `p`'s local row `j`.
    global_rows: Vec<Vec<usize>>,
    /// Global row id → `(partition, local row)`.
    map: Vec<(u32, u32)>,
}

impl ShardedFeatureStore {
    /// Opens a sharded store, validating the manifest, every partition
    /// store, and the global-row mapping (disjoint cover of the logical
    /// row space).
    ///
    /// # Errors
    ///
    /// Fails on missing/corrupt manifests, sidecars, or partition stores,
    /// and on any geometry disagreement between them.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, DataIoError> {
        let dir = dir.as_ref();
        let text = fs::read_to_string(dir.join(SHARDED_MANIFEST))
            .map_err(|e| DataIoError::Io(format!("{}: {e}", dir.display())))?;
        let manifest = ShardedStoreManifest::from_text(&text)?;
        let mut stores = Vec::with_capacity(manifest.num_partitions());
        let mut global_rows = Vec::with_capacity(manifest.num_partitions());
        let mut map = vec![(u32::MAX, 0u32); manifest.meta.rows];
        for p in 0..manifest.num_partitions() {
            let sub = part_dir(dir, p);
            let store = FeatureStore::open(&sub)?;
            let sm = store.meta();
            if sm.rows != manifest.partition_rows[p]
                || sm.cols != manifest.meta.cols
                || sm.num_hops != manifest.meta.num_hops
                || sm.chunk_size != manifest.meta.chunk_size
            {
                return Err(CorruptError::new(format!(
                    "partition {p} store geometry disagrees with the sharded manifest"
                ))
                .with_path(&sub)
                .into());
            }
            let sidecar_path = sub.join(ROWS_SIDECAR);
            let mut f = fs::File::open(&sidecar_path)
                .map_err(|e| DataIoError::Io(format!("partition {p} rows sidecar: {e}")))?;
            let sidecar = tio::read_matrix(&mut f)
                .map_err(|e| CorruptError::new(e.to_string()).with_path(&sidecar_path))?;
            let rows =
                decode_rows_sidecar(&sidecar, sm.rows).map_err(|e| e.with_path(&sidecar_path))?;
            for (j, &g) in rows.iter().enumerate() {
                let slot = map.get_mut(g).ok_or_else(|| {
                    CorruptError::new(format!("global row {g} out of range"))
                        .with_path(&sidecar_path)
                })?;
                if slot.0 != u32::MAX {
                    return Err(CorruptError::new(format!(
                        "global row {g} claimed by two partitions"
                    ))
                    .with_path(&sidecar_path)
                    .into());
                }
                *slot = (p as u32, j as u32);
            }
            stores.push(store);
            global_rows.push(rows);
        }
        if map.iter().any(|&(p, _)| p == u32::MAX) {
            return Err(DataIoError::corrupt(
                "partition row sidecars do not cover the logical row space",
            ));
        }
        Ok(ShardedFeatureStore {
            manifest,
            stores,
            global_rows,
            map,
        })
    }

    /// The sharded manifest.
    pub fn manifest(&self) -> &ShardedStoreManifest {
        &self.manifest
    }

    /// Logical (concatenated) store metadata; `rows` is the total.
    pub fn meta(&self) -> &StoreMeta {
        &self.manifest.meta
    }

    /// Number of partition stores.
    pub fn num_partitions(&self) -> usize {
        self.stores.len()
    }

    /// Metadata of partition `p`'s store.
    pub fn partition_meta(&self, p: usize) -> &StoreMeta {
        self.stores[p].meta()
    }

    /// Global row ids held by partition `p`, in local row order.
    pub fn partition_global_rows(&self, p: usize) -> &[usize] {
        &self.global_rows[p]
    }

    /// Resolves a global row to its `(partition, local row)` coordinates.
    ///
    /// # Errors
    ///
    /// Fails if `row` is outside the logical row space.
    pub fn locate(&self, row: usize) -> Result<(usize, usize), DataIoError> {
        let &(p, j) = self.map.get(row).ok_or_else(|| {
            DataIoError::OutOfRange(format!(
                "row {row} out of range ({} rows)",
                self.manifest.meta.rows
            ))
        })?;
        Ok((p as usize, j as usize))
    }

    /// Chunks in partition `p`'s store.
    pub fn num_chunks(&self, p: usize) -> usize {
        self.stores[p].meta().num_chunks()
    }

    /// Total chunks across all partition stores — the work list a sharded
    /// chunk loader shuffles.
    pub fn total_chunks(&self) -> usize {
        (0..self.num_partitions()).map(|p| self.num_chunks(p)).sum()
    }

    /// Randomly reads individual **global** `rows` of hop `k`, fanning the
    /// per-row requests out to the owning partition stores. Output row `i`
    /// corresponds to `rows[i]`, exactly like
    /// [`FeatureStore::read_rows`] on the unsharded layout.
    ///
    /// # Errors
    ///
    /// Fails if `k` or any row is out of range, or on I/O errors.
    pub fn read_rows(
        &mut self,
        k: usize,
        rows: &[usize],
        path: AccessPath,
    ) -> Result<Matrix, DataIoError> {
        let cols = self.manifest.meta.cols;
        let mut out = Matrix::zeros(rows.len(), cols);
        for (i, &r) in rows.iter().enumerate() {
            let (p, j) = self.locate(r)?;
            let row = self.stores[p].read_rows(k, &[j], path)?;
            out.row_mut(i).copy_from_slice(row.row(0));
        }
        Ok(out)
    }

    /// Sequentially reads chunk `chunk_id` of **partition `p`** across all
    /// hops — the unit of work a sharded chunk loader schedules. Use
    /// [`ShardedFeatureStore::chunk_global_rows`] for the global row ids
    /// the returned matrices cover.
    ///
    /// # Errors
    ///
    /// Fails if `p`, `k`, or `chunk_id` is out of range, or on I/O errors.
    pub fn read_chunk_all_hops(
        &mut self,
        p: usize,
        chunk_id: usize,
        path: AccessPath,
    ) -> Result<Vec<Matrix>, DataIoError> {
        let store = self
            .stores
            .get_mut(p)
            .ok_or_else(|| DataIoError::OutOfRange(format!("partition {p} out of range")))?;
        store.read_chunk_all_hops(chunk_id, path)
    }

    /// Global row ids of chunk `chunk_id` of partition `p`, in the order
    /// the chunk's matrix rows are stored.
    ///
    /// # Panics
    ///
    /// Panics if `p` or `chunk_id` is out of range.
    pub fn chunk_global_rows(&self, p: usize, chunk_id: usize) -> &[usize] {
        let cs = self.manifest.meta.chunk_size;
        let rows = &self.global_rows[p];
        let start = chunk_id * cs;
        &rows[start..(start + cs).min(rows.len())]
    }

    /// Reads an entire **logical** hop matrix: every partition's hop is
    /// read sequentially and scattered to its global row positions —
    /// value-identical to [`FeatureStore::read_full_hop`] on the unsharded
    /// layout.
    ///
    /// # Errors
    ///
    /// Fails if `k` is out of range or any partition read fails.
    pub fn read_full_hop(&mut self, k: usize) -> Result<Matrix, DataIoError> {
        let cols = self.manifest.meta.cols;
        let mut out = Matrix::zeros(self.manifest.meta.rows, cols);
        for p in 0..self.stores.len() {
            let m = self.stores[p].read_full_hop(k)?;
            for (j, &g) in self.global_rows[p].iter().enumerate() {
                out.row_mut(g).copy_from_slice(m.row(j));
            }
        }
        Ok(out)
    }

    /// I/O counters aggregated across every partition store.
    pub fn counters(&self) -> IoCounters {
        let mut total = IoCounters::default();
        for store in &self.stores {
            total.accumulate(&store.counters());
        }
        total
    }

    /// Resets every partition store's counters.
    pub fn reset_counters(&mut self) {
        for store in &mut self.stores {
            store.reset_counters();
        }
    }

    /// Per-epoch counter delta aggregated across every partition store:
    /// each partition's [`FeatureStore::take_epoch_counters`] summed.
    /// Cumulative totals from [`ShardedFeatureStore::counters`] are
    /// untouched, so epoch-over-epoch read amplification is reportable
    /// without a process restart.
    pub fn take_epoch_counters(&mut self) -> IoCounters {
        let mut total = IoCounters::default();
        for store in &mut self.stores {
            total.accumulate(&store.take_epoch_counters());
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ppgnn-sharded-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn meta(rows: usize) -> StoreMeta {
        StoreMeta {
            dataset: "sharded-test".into(),
            num_hops: 2,
            rows,
            cols: 3,
            chunk_size: 4,
            dtype: ppgnn_tensor::StoreDtype::F32,
        }
    }

    /// Rows 0..n dealt round-robin to `p` partitions (order preserved).
    fn round_robin(n: usize, p: usize) -> Vec<Vec<usize>> {
        let mut out = vec![Vec::new(); p];
        for r in 0..n {
            out[r % p].push(r);
        }
        out
    }

    fn global_hop(k: usize, rows: usize) -> Matrix {
        Matrix::from_fn(rows, 3, move |r, c| (k * 10_000 + r * 10 + c) as f32)
    }

    fn build(dir: &Path, rows: usize, parts: usize) -> ShardedFeatureStore {
        let assignment = round_robin(rows, parts);
        let mut w = ShardedStoreWriter::create(dir, meta(rows), &assignment, 2).unwrap();
        for k in 0..2 {
            let hop = global_hop(k, rows);
            for (p, globals) in assignment.iter().enumerate() {
                let local = hop.gather_rows(globals);
                w.submit(p, k, local).unwrap();
            }
        }
        w.finish().unwrap()
    }

    #[test]
    fn read_rows_matches_the_global_layout() {
        let dir = temp_dir("rows");
        let mut store = build(&dir, 10, 3);
        assert_eq!(store.num_partitions(), 3);
        let got = store.read_rows(1, &[7, 0, 9], AccessPath::Direct).unwrap();
        let want = global_hop(1, 10).gather_rows(&[7, 0, 9]);
        assert_eq!(got, want);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn full_hop_reassembles_global_rows() {
        let dir = temp_dir("fullhop");
        let mut store = build(&dir, 11, 2);
        for k in 0..2 {
            assert_eq!(store.read_full_hop(k).unwrap(), global_hop(k, 11));
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn chunks_map_back_to_global_rows() {
        let dir = temp_dir("chunks");
        let mut store = build(&dir, 10, 3);
        let mut seen = Vec::new();
        for p in 0..store.num_partitions() {
            for c in 0..store.num_chunks(p) {
                let globals = store.chunk_global_rows(p, c).to_vec();
                let hops = store.read_chunk_all_hops(p, c, AccessPath::Direct).unwrap();
                assert_eq!(hops[0].rows(), globals.len());
                for (j, &g) in globals.iter().enumerate() {
                    assert_eq!(hops[1].row(j), global_hop(1, 10).row(g));
                }
                seen.extend(globals);
            }
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn counters_aggregate_across_partition_stores() {
        let dir = temp_dir("counters");
        let mut store = build(&dir, 10, 2);
        store
            .read_rows(0, &[0, 1, 2, 3], AccessPath::Direct)
            .unwrap();
        let c = store.counters();
        assert_eq!(c.rand_requests, 4);
        assert_eq!(c.rand_bytes, 4 * 3 * 4);
        store.reset_counters();
        store
            .read_chunk_all_hops(0, 0, AccessPath::HostBounce)
            .unwrap();
        let c = store.counters();
        assert_eq!(c.seq_requests, 2); // one per hop file
        assert_eq!(c.bounce_bytes, c.seq_bytes);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn single_partition_store_is_byte_identical_to_unsharded() {
        let dir = temp_dir("p1");
        let plain_dir = temp_dir("p1-plain");
        build(&dir, 9, 1);
        let mut w = crate::FeatureStoreWriter::create(&plain_dir, meta(9)).unwrap();
        for k in 0..2 {
            w.write_hop(k, &global_hop(k, 9)).unwrap();
        }
        w.finish().unwrap();
        for k in 0..2 {
            let a = fs::read(dir.join("part_0").join(format!("hop_{k}.ppgt"))).unwrap();
            let b = fs::read(plain_dir.join(format!("hop_{k}.ppgt"))).unwrap();
            assert_eq!(a, b, "hop {k} bytes differ from the unsharded layout");
        }
        fs::remove_dir_all(&dir).unwrap();
        fs::remove_dir_all(&plain_dir).unwrap();
    }

    #[test]
    fn create_rejects_bad_row_covers() {
        let dir = temp_dir("badcover");
        // Missing row 3.
        let err = ShardedStoreWriter::create(&dir, meta(4), &[vec![0, 1], vec![2]], 1);
        assert!(matches!(err, Err(DataIoError::BadManifest(_))));
        // Duplicate row.
        let err = ShardedStoreWriter::create(&dir, meta(3), &[vec![0, 1], vec![1, 2]], 1);
        assert!(matches!(err, Err(DataIoError::BadManifest(_))));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_rejects_tampered_sidecars() {
        let dir = temp_dir("tamper");
        build(&dir, 8, 2);
        // Rewrite partition 1's sidecar to claim rows partition 0 owns.
        let sidecar = encode_rows_sidecar(&[0, 2, 4, 6]);
        let f = fs::File::create(dir.join("part_1").join(ROWS_SIDECAR)).unwrap();
        let mut w = std::io::BufWriter::new(f);
        tio::write_matrix(&mut w, &sidecar).unwrap();
        drop(w);
        assert!(matches!(
            ShardedFeatureStore::open(&dir),
            Err(DataIoError::Corrupt(_))
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rows_sidecar_encoding_is_exact_past_the_f32_integer_range() {
        // Ids above 2²⁴ are not exactly representable as one f32; the
        // split-halves encoding must round-trip them anyway.
        let big = vec![0usize, 1, (1 << 24) + 1, (1 << 25) + 3, (1 << 30) + 12_345];
        let decoded = decode_rows_sidecar(&encode_rows_sidecar(&big), big.len()).unwrap();
        assert_eq!(decoded, big);
        // Shape mismatches are corruption.
        assert!(decode_rows_sidecar(&encode_rows_sidecar(&big), 4).is_err());
    }

    #[test]
    fn manifest_round_trips() {
        let m = ShardedStoreManifest {
            meta: meta(10),
            partition_rows: vec![4, 3, 3],
        };
        let parsed = ShardedStoreManifest::from_text(&m.to_text()).unwrap();
        assert_eq!(parsed, m);
        assert!(ShardedStoreManifest::from_text("dataset=x\n").is_err());
    }

    #[test]
    fn empty_partitions_are_tolerated() {
        // 3 rows over 3 partitions where one partition owns nothing.
        let dir = temp_dir("empty");
        let assignment = vec![vec![0, 2], vec![], vec![1]];
        let mut w = ShardedStoreWriter::create(&dir, meta(3), &assignment, 1).unwrap();
        for k in 0..2 {
            let hop = global_hop(k, 3);
            for (p, globals) in assignment.iter().enumerate() {
                w.submit(p, k, hop.gather_rows(globals)).unwrap();
            }
        }
        let mut store = w.finish().unwrap();
        assert_eq!(store.num_chunks(1), 0);
        assert_eq!(store.read_full_hop(0).unwrap(), global_hop(0, 3));
        fs::remove_dir_all(&dir).unwrap();
    }
}
