//! Deterministic, seeded I/O fault injection for crash-safety testing.
//!
//! A fault *plan* is a list of specs, each naming an injection **site**,
//! a fault [`FaultKind`], and the 1-based ordinal of the matching
//! operation to fire on. Plans come from the `PPGNN_FAULTS` knob or are
//! installed programmatically by tests via [`install`]. With no plan
//! installed the facility costs one relaxed atomic load per injection
//! point — the same disabled-path discipline as `ppgnn-telemetry`.
//!
//! Grammar (specs joined with `;`):
//!
//! ```text
//! PPGNN_FAULTS = spec (";" spec)*
//! spec         = site ":" kind ":" nth ["+"] ["@" scope]
//!              | "seed=" u64
//! kind         = "write" | "read" | "torn" | "flip"
//! ```
//!
//! `nth` counts matching operations from 1; a trailing `+` makes the
//! spec *sticky* (it fires on the nth and every later operation —
//! modelling a process killed at that point, since nothing after the
//! kill point succeeds either). `@scope` restricts a spec to paths
//! containing the substring, so parallel tests in one process cannot
//! cross-fire. `seed=<u64>` installs no specs; it parameterizes the
//! chaos suite, which derives per-round plans from it (see
//! [`env_seed`]).
//!
//! Injection sites wired through the store stack:
//!
//! | site              | operation                                   |
//! |-------------------|---------------------------------------------|
//! | `hop`             | hop-file atomic write                       |
//! | `manifest`        | store/preprop manifest atomic write         |
//! | `sharded-manifest`| `sharded.txt` atomic write                  |
//! | `sidecar`         | rows/labels/nodes sidecar atomic write      |
//! | `journal`         | completed-units journal append              |
//! | `read`            | hop payload read in the feature store       |
//!
//! Write sites accept `write` (the write call errors), `torn` (half the
//! bytes land, then an error — the commit protocol must leave no
//! half-written visible file), and `flip` (one deterministic bit is
//! flipped but the write *succeeds* — checksums must catch it on read).
//! The read site accepts `read`.

use std::path::Path;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Mutex;

use ppgnn_tensor::knobs;

/// What a firing fault does to the operation it intercepts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The write call fails with an injected I/O error.
    WriteErr,
    /// The read call fails with an injected I/O error.
    ReadErr,
    /// Half the bytes are written, then the call errors (torn write).
    Torn,
    /// One bit of the written bytes is flipped; the call succeeds.
    BitFlip,
}

impl FaultKind {
    fn is_write_side(self) -> bool {
        !matches!(self, FaultKind::ReadErr)
    }

    /// Short wire name of the kind, as written in `PPGNN_FAULTS` specs.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::WriteErr => "write",
            FaultKind::ReadErr => "read",
            FaultKind::Torn => "torn",
            FaultKind::BitFlip => "flip",
        }
    }
}

/// One firing of a fault, returned from [`write_fault`] / [`read_fault`]
/// for the caller to apply.
#[derive(Debug, Clone, Copy)]
pub struct Fault {
    /// What to do to the intercepted operation.
    pub kind: FaultKind,
    /// Ordinal of the firing within its spec — seeds the deterministic
    /// bit-flip position.
    ord: u64,
    salt: u64,
}

impl Fault {
    /// Deterministic (byte, bit) position for a [`FaultKind::BitFlip`]
    /// over a buffer of `len` bytes.
    pub fn flip_position(&self, len: usize) -> (usize, u32) {
        let h = fnv1a_u64(self.salt ^ self.ord.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        ((h % len.max(1) as u64) as usize, (h >> 32) as u32 % 8)
    }

    /// An injected-error payload naming the site ordinal, so test
    /// failures print which firing produced them.
    pub fn to_io_error(&self) -> std::io::Error {
        std::io::Error::other(format!(
            "injected {} fault (op #{})",
            self.kind.name(),
            self.ord
        ))
    }
}

fn fnv1a_u64(v: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in v.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn fnv1a_str(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[derive(Debug, Clone)]
struct Spec {
    site: String,
    kind: FaultKind,
    nth: u64,
    sticky: bool,
    scope: Option<String>,
    hits: u64,
}

/// A set of fault specs to arm via [`install`].
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    specs: Vec<Spec>,
    seed: Option<u64>,
}

impl FaultPlan {
    /// An empty plan (installs as disarmed).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Appends a spec; `nth` is 1-based, `sticky` keeps it firing from
    /// the nth matching operation onward.
    #[must_use]
    pub fn with_spec(mut self, site: &str, kind: FaultKind, nth: u64, sticky: bool) -> Self {
        self.specs.push(Spec {
            site: site.to_string(),
            kind,
            nth: nth.max(1),
            sticky,
            scope: None,
            hits: 0,
        });
        self
    }

    /// A single one-shot fault at the nth matching operation.
    pub fn one_shot(site: &str, kind: FaultKind, nth: u64) -> Self {
        FaultPlan::new().with_spec(site, kind, nth, false)
    }

    /// A sticky write error from the nth operation onward — the closest
    /// analogue of killing the process at that point.
    pub fn kill_at(site: &str, nth: u64) -> Self {
        FaultPlan::new().with_spec(site, FaultKind::WriteErr, nth, true)
    }

    /// Restricts every spec in the plan to paths containing `scope`.
    #[must_use]
    pub fn scoped(mut self, scope: &str) -> Self {
        for s in &mut self.specs {
            s.scope = Some(scope.to_string());
        }
        self
    }

    /// Whether the plan injects anything (a bare `seed=` plan does not).
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// The `seed=` value, if the plan carries one.
    pub fn seed(&self) -> Option<u64> {
        self.seed
    }

    /// Parses the `PPGNN_FAULTS` grammar (see the module docs).
    ///
    /// # Errors
    ///
    /// A human-readable description of the first malformed spec.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut plan = FaultPlan::new();
        for raw in text.split(';') {
            let raw = raw.trim();
            if raw.is_empty() {
                continue;
            }
            if let Some(seed) = raw.strip_prefix("seed=") {
                plan.seed = Some(
                    seed.parse::<u64>()
                        .map_err(|_| format!("bad seed in fault spec `{raw}`"))?,
                );
                continue;
            }
            let (body, scope) = match raw.split_once('@') {
                Some((b, s)) if !s.is_empty() => (b, Some(s.to_string())),
                Some((b, _)) => (b, None),
                None => (raw, None),
            };
            let mut parts = body.split(':');
            let (site, kind, nth) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
                (Some(site), Some(kind), Some(nth), None) if !site.is_empty() => (site, kind, nth),
                _ => {
                    return Err(format!(
                        "bad fault spec `{raw}`: want site:kind:nth[+][@scope]"
                    ))
                }
            };
            let kind = match kind {
                "write" => FaultKind::WriteErr,
                "read" => FaultKind::ReadErr,
                "torn" => FaultKind::Torn,
                "flip" => FaultKind::BitFlip,
                other => return Err(format!("unknown fault kind `{other}` in `{raw}`")),
            };
            let (nth, sticky) = match nth.strip_suffix('+') {
                Some(n) => (n, true),
                None => (nth, false),
            };
            let nth = nth
                .parse::<u64>()
                .map_err(|_| format!("bad ordinal in fault spec `{raw}`"))?;
            plan.specs.push(Spec {
                site: site.to_string(),
                kind,
                nth: nth.max(1),
                sticky,
                scope,
                hits: 0,
            });
        }
        Ok(plan)
    }
}

const STATE_UNKNOWN: u8 = 0;
const STATE_OFF: u8 = 1;
const STATE_ON: u8 = 2;

static STATE: AtomicU8 = AtomicU8::new(STATE_UNKNOWN);
static PLAN: Mutex<Option<FaultPlan>> = Mutex::new(None);

/// Whether any fault specs are armed. One relaxed load once the
/// `PPGNN_FAULTS` knob has been latched.
fn armed() -> bool {
    match STATE.load(Ordering::Relaxed) {
        STATE_ON => true,
        STATE_OFF => false,
        _ => init_from_env(),
    }
}

/// One-time slow path of [`armed`]: parse and latch `PPGNN_FAULTS`.
///
/// # Panics
///
/// Panics on a malformed plan — a mistyped fault spec silently
/// injecting nothing would defeat the test using it.
#[cold]
fn init_from_env() -> bool {
    let plan = match knobs::string_value(knobs::FAULTS) {
        Some(text) => match FaultPlan::parse(&text) {
            Ok(plan) => Some(plan),
            Err(e) => panic!("invalid PPGNN_FAULTS: {e}"),
        },
        None => None,
    };
    let on = plan.as_ref().is_some_and(|p| !p.is_empty());
    *lock_plan() = plan;
    STATE.store(if on { STATE_ON } else { STATE_OFF }, Ordering::Relaxed);
    on
}

fn lock_plan() -> std::sync::MutexGuard<'static, Option<FaultPlan>> {
    PLAN.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Programmatically arms a fault plan, overriding `PPGNN_FAULTS`.
/// Tests install per-case plans (usually [`FaultPlan::scoped`] to their
/// own temp dir) and [`clear`] them when done.
pub fn install(plan: FaultPlan) {
    let on = !plan.is_empty();
    *lock_plan() = Some(plan);
    STATE.store(if on { STATE_ON } else { STATE_OFF }, Ordering::Relaxed);
}

/// Disarms all fault injection.
pub fn clear() {
    *lock_plan() = None;
    STATE.store(STATE_OFF, Ordering::Relaxed);
}

/// The chaos-suite seed: the `seed=<u64>` spec from `PPGNN_FAULTS`,
/// latched on first call. The seed is a session constant — it survives
/// [`install`]/[`clear`] cycles, so chaos tests that arm and disarm
/// per-round plans still derive every round from the one seed the CI
/// leg (or a reproducing developer) exported.
pub fn env_seed() -> Option<u64> {
    static ENV_SEED: std::sync::OnceLock<Option<u64>> = std::sync::OnceLock::new();
    *ENV_SEED.get_or_init(|| {
        let text = knobs::string_value(knobs::FAULTS)?;
        match FaultPlan::parse(&text) {
            Ok(plan) => plan.seed,
            Err(e) => panic!("invalid PPGNN_FAULTS: {e}"),
        }
    })
}

fn check(site: &str, path: &Path, write_side: bool) -> Option<Fault> {
    if !armed() {
        return None;
    }
    let mut guard = lock_plan();
    let plan = guard.as_mut()?;
    let path_str = path.to_string_lossy();
    for s in &mut plan.specs {
        if s.kind.is_write_side() != write_side || s.site != site {
            continue;
        }
        if let Some(scope) = &s.scope {
            if !path_str.contains(scope.as_str()) {
                continue;
            }
        }
        s.hits += 1;
        let fire = if s.sticky {
            s.hits >= s.nth
        } else {
            s.hits == s.nth
        };
        if fire {
            return Some(Fault {
                kind: s.kind,
                ord: s.hits,
                salt: fnv1a_str(&s.site),
            });
        }
    }
    None
}

/// Asks the armed plan whether this write operation should fault.
/// `site` names the injection point (see the module docs); `path` is
/// the destination file, matched against spec scopes.
pub fn write_fault(site: &str, path: &Path) -> Option<Fault> {
    check(site, path, true)
}

/// Asks the armed plan whether this read operation should fault.
pub fn read_fault(site: &str, path: &Path) -> Option<Fault> {
    check(site, path, false)
}

#[cfg(test)]
mod tests {
    use super::*;

    // Fault state is process-global: serialize the tests that arm it.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn parse_accepts_full_grammar() {
        let p = FaultPlan::parse("hop:write:2;read:read:1+@/tmp/x;seed=42;manifest:flip:3")
            .expect("fixture invariant holds");
        assert_eq!(p.specs.len(), 3);
        assert_eq!(p.seed(), Some(42));
        assert_eq!(p.specs[0].site, "hop");
        assert_eq!(p.specs[0].kind, FaultKind::WriteErr);
        assert_eq!(p.specs[0].nth, 2);
        assert!(!p.specs[0].sticky);
        assert!(p.specs[1].sticky);
        assert_eq!(p.specs[1].scope.as_deref(), Some("/tmp/x"));
        assert_eq!(p.specs[2].kind, FaultKind::BitFlip);
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        assert!(FaultPlan::parse("hop:write").is_err());
        assert!(FaultPlan::parse("hop:sideways:1").is_err());
        assert!(FaultPlan::parse("hop:write:zero").is_err());
        assert!(FaultPlan::parse("seed=notanumber").is_err());
        assert!(FaultPlan::parse(":write:1").is_err());
    }

    #[test]
    fn one_shot_fires_exactly_on_the_nth_operation() {
        let _guard = TEST_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        install(FaultPlan::one_shot("hop", FaultKind::WriteErr, 2));
        let p = Path::new("/any/hop_0.ppgt");
        assert!(write_fault("hop", p).is_none());
        assert!(write_fault("manifest", p).is_none()); // other site: no count
        let f = write_fault("hop", p).expect("fixture invariant holds");
        assert_eq!(f.kind, FaultKind::WriteErr);
        assert!(write_fault("hop", p).is_none()); // one-shot: spent
        clear();
        assert!(write_fault("hop", p).is_none());
    }

    #[test]
    fn sticky_kill_keeps_firing_and_scope_filters_paths() {
        let _guard = TEST_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        install(FaultPlan::kill_at("hop", 1).scoped("/store-a/"));
        let a = Path::new("/store-a/hop_0.ppgt");
        let b = Path::new("/store-b/hop_0.ppgt");
        assert!(write_fault("hop", b).is_none());
        assert!(write_fault("hop", a).is_some());
        assert!(write_fault("hop", a).is_some()); // sticky
        assert!(write_fault("hop", b).is_none());
        clear();
    }

    #[test]
    fn flip_positions_are_deterministic_and_in_range() {
        let f = Fault {
            kind: FaultKind::BitFlip,
            ord: 3,
            salt: fnv1a_str("hop"),
        };
        let (byte, bit) = f.flip_position(1000);
        assert_eq!((byte, bit), f.flip_position(1000));
        assert!(byte < 1000);
        assert!(bit < 8);
        assert_eq!(f.flip_position(0).0, 0); // empty buffers stay safe
    }
}
