//! On-disk feature store for preprocessed hop features.
//!
//! Implements the storage layout of Section 4.3: **one file per (operator,
//! hop)** so parallel read requests can target different files, row-major
//! `f32` payloads so a contiguous row range *is* a chunk, and two read
//! paths:
//!
//! * [`AccessPath::Direct`] — the GPUDirect-Storage analog: chunk reads go
//!   "straight to the device buffer" (one read syscall, no bounce copy);
//! * [`AccessPath::HostBounce`] — the conventional path through a host
//!   staging buffer (an extra memcpy per read, which the I/O counters
//!   expose).
//!
//! Every read updates [`IoCounters`], the measured quantities the
//! performance simulator replays at paper scale — sequential vs random
//! request counts and byte volumes are what separate chunk reshuffling from
//! SGD-RR on storage.
//!
//! Writes have an asynchronous path too: [`AsyncHopWriter`] runs a
//! [`FeatureStoreWriter`] on its own thread behind a bounded channel
//! (mirroring the generation-2 double-buffer loader on the read side), so
//! the preprocessor's hop `r + 1` diffusion overlaps hop `r` persistence.
//!
//! Stores are crash-safe: every file lands via the atomic-commit funnel
//! in [`commit`] (temp + fsync + rename, manifest written last as the
//! commit point), hop payloads carry per-chunk checksums verified on
//! read, writers journal completed hops for resume, and the whole stack
//! is testable under the deterministic [`fault`] injection facility
//! (`PPGNN_FAULTS`).
//!
//! For partition-parallel preprocessing the store itself shards:
//! [`ShardedStoreWriter`] runs one async writer per graph partition and
//! [`ShardedFeatureStore`] serves global-row reads across the per-partition
//! stores under one [`ShardedStoreManifest`], so training-time chunk I/O
//! fans out over files instead of serializing on one.

#![deny(missing_docs)]

pub mod commit;
mod error;
pub mod fault;
mod sharded;
mod store;
mod writer;

pub use error::{CorruptError, DataIoError};
pub use ppgnn_tensor::StoreDtype;
pub use sharded::{ShardedFeatureStore, ShardedStoreManifest, ShardedStoreWriter};
pub use store::{AccessPath, FeatureStore, FeatureStoreWriter, IoCounters, StoreMeta};
pub use writer::{AsyncHopWriter, WriterStats, DEFAULT_WRITER_QUEUE};
