use std::fs::{self, File};
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use ppgnn_tensor::cast::{self, StoreDtype};
use ppgnn_tensor::{io as tio, Matrix};

use crate::DataIoError;

/// Global telemetry mirrors of the per-store [`IoCounters`], so traced
/// runs see storage traffic in the metrics registry without plumbing a
/// store handle to the report site. Counters only — the per-row read
/// loop is a hot path, so values are accumulated locally and flushed
/// once per call.
static STORE_SEQ_BYTES: ppgnn_telemetry::Counter = ppgnn_telemetry::Counter::new("store.seq_bytes");
static STORE_RAND_BYTES: ppgnn_telemetry::Counter =
    ppgnn_telemetry::Counter::new("store.rand_bytes");
static STORE_LOGICAL_BYTES: ppgnn_telemetry::Counter =
    ppgnn_telemetry::Counter::new("store.logical_bytes");

const MANIFEST: &str = "manifest.txt";

/// Magic of the compressed (`f16`/`bf16`/`int8`) hop-file format. `f32`
/// hops keep the `PPGT` format byte-for-byte.
const QMAGIC: &[u8; 4] = b"PPGQ";
const QVERSION: u32 = 1;
/// `PPGQ` header: magic + version + rows `u64` + cols `u64` + dtype
/// code `u32`.
const QHEADER_BYTES: usize = 4 + 4 + 8 + 8 + 4;

/// On-disk dtype code of the `PPGQ` header (`f32` never appears — it
/// stays in the `PPGT` format).
fn dtype_code(dtype: StoreDtype) -> u32 {
    match dtype {
        StoreDtype::F32 => 0,
        StoreDtype::F16 => 1,
        StoreDtype::Bf16 => 2,
        StoreDtype::Int8 => 3,
    }
}

/// Byte offset of the first encoded row in a hop file of `dtype`.
fn data_offset(dtype: StoreDtype) -> u64 {
    if dtype.is_f32() {
        tio::HEADER_BYTES as u64
    } else {
        QHEADER_BYTES as u64
    }
}

/// Reads and validates a `PPGQ` header against the manifest's `dtype`,
/// returning `(rows, cols)`.
fn read_qheader(mut r: impl Read, dtype: StoreDtype) -> Result<(usize, usize), DataIoError> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != QMAGIC {
        return Err(DataIoError::Corrupt(format!(
            "bad magic {magic:?}, expected {QMAGIC:?} for a {dtype} hop"
        )));
    }
    let mut word = [0u8; 4];
    r.read_exact(&mut word)?;
    let version = u32::from_le_bytes(word);
    if version != QVERSION {
        return Err(DataIoError::Corrupt(format!(
            "unsupported PPGQ version {version}"
        )));
    }
    let mut dim = [0u8; 8];
    r.read_exact(&mut dim)?;
    let rows = u64::from_le_bytes(dim) as usize;
    r.read_exact(&mut dim)?;
    let cols = u64::from_le_bytes(dim) as usize;
    r.read_exact(&mut word)?;
    let code = u32::from_le_bytes(word);
    if code != dtype_code(dtype) {
        return Err(DataIoError::Corrupt(format!(
            "hop file dtype code {code} disagrees with manifest dtype {dtype}"
        )));
    }
    Ok((rows, cols))
}

/// Store-level metadata persisted in `manifest.txt` (simple `key=value`
/// lines; no external parser dependency).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreMeta {
    /// Dataset name the features were preprocessed from.
    pub dataset: String,
    /// Number of hop files (`R + 1`).
    pub num_hops: usize,
    /// Rows per hop file (training-relevant nodes).
    pub rows: usize,
    /// Feature dimension per hop.
    pub cols: usize,
    /// Rows per chunk for chunked access.
    pub chunk_size: usize,
    /// Element encoding of the hop payloads. [`StoreDtype::F32`] keeps
    /// the manifest and hop files byte-identical to pre-dtype stores
    /// (the `dtype=` key is only written for compressed encodings, and
    /// old readers ignore unknown keys).
    pub dtype: StoreDtype,
}

impl StoreMeta {
    fn to_manifest(&self) -> String {
        let mut text = format!(
            "dataset={}\nnum_hops={}\nrows={}\ncols={}\nchunk_size={}\n",
            self.dataset, self.num_hops, self.rows, self.cols, self.chunk_size
        );
        if !self.dtype.is_f32() {
            text.push_str(&format!("dtype={}\n", self.dtype.name()));
        }
        text
    }

    fn from_manifest(text: &str) -> Result<Self, DataIoError> {
        let mut dataset = None;
        let mut num_hops = None;
        let mut rows = None;
        let mut cols = None;
        let mut chunk_size = None;
        let mut dtype = StoreDtype::F32;
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let (k, v) = line
                .split_once('=')
                .ok_or_else(|| DataIoError::BadManifest(format!("bad line: {line}")))?;
            let parse = |v: &str| {
                v.parse::<usize>()
                    .map_err(|_| DataIoError::BadManifest(format!("bad value for {k}: {v}")))
            };
            match k {
                "dataset" => dataset = Some(v.to_string()),
                "num_hops" => num_hops = Some(parse(v)?),
                "rows" => rows = Some(parse(v)?),
                "cols" => cols = Some(parse(v)?),
                "chunk_size" => chunk_size = Some(parse(v)?),
                "dtype" => {
                    dtype = StoreDtype::parse(v).ok_or_else(|| {
                        DataIoError::BadManifest(format!("unknown store dtype: {v}"))
                    })?;
                }
                _ => {} // forward compatible: unknown keys ignored
            }
        }
        let missing = |f: &str| DataIoError::BadManifest(format!("missing key {f}"));
        Ok(StoreMeta {
            dataset: dataset.ok_or_else(|| missing("dataset"))?,
            num_hops: num_hops.ok_or_else(|| missing("num_hops"))?,
            rows: rows.ok_or_else(|| missing("rows"))?,
            cols: cols.ok_or_else(|| missing("cols"))?,
            chunk_size: chunk_size.ok_or_else(|| missing("chunk_size"))?,
            dtype,
        })
    }

    /// Number of chunks per hop file (last chunk may be partial).
    pub fn num_chunks(&self) -> usize {
        if self.rows == 0 {
            0
        } else {
            self.rows.div_ceil(self.chunk_size)
        }
    }

    /// Total **logical** bytes across all hop files — the decoded `f32`
    /// payload the trainer consumes, independent of the stored encoding.
    pub fn total_bytes(&self) -> u64 {
        (self.num_hops * self.rows * self.cols * 4) as u64
    }

    /// Total **physical** payload bytes across all hop files as encoded
    /// on disk (headers excluded). Equal to [`StoreMeta::total_bytes`]
    /// for `f32`; half of it for the 16-bit encodings.
    pub fn physical_bytes(&self) -> u64 {
        (self.num_hops * self.rows * self.dtype.encoded_row_bytes(self.cols)) as u64
    }
}

/// Which copy path a read takes (GPUDirect analog vs host bounce buffer).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessPath {
    /// Storage → device buffer directly (NVIDIA GDS analog).
    Direct,
    /// Storage → host staging buffer → device buffer.
    HostBounce,
}

/// Byte/request accounting for one reader.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IoCounters {
    /// Sequential (chunk) read requests issued.
    pub seq_requests: u64,
    /// Bytes read sequentially.
    pub seq_bytes: u64,
    /// Random (row) read requests issued.
    pub rand_requests: u64,
    /// Bytes read randomly.
    pub rand_bytes: u64,
    /// Extra bytes copied through the host bounce buffer.
    pub bounce_bytes: u64,
    /// Decoded `f32` bytes delivered to callers. `seq_bytes` and
    /// `rand_bytes` count **physical** (encoded) bytes moved from
    /// storage; for an `f32` store the two coincide, and the gap is the
    /// bandwidth a compressed dtype saved.
    pub logical_bytes: u64,
}

impl IoCounters {
    /// Total physical bytes read from storage.
    pub fn total_bytes(&self) -> u64 {
        self.seq_bytes + self.rand_bytes
    }

    /// Logical-over-physical byte ratio (`1.0` for `f32` stores, `~2.0`
    /// for the 16-bit encodings); `1.0` when nothing was read.
    pub fn compression_ratio(&self) -> f64 {
        let physical = self.total_bytes();
        if physical == 0 {
            1.0
        } else {
            self.logical_bytes as f64 / physical as f64
        }
    }

    /// Adds `other`'s counts into `self` — used to aggregate counters
    /// across the partition stores of a sharded store.
    pub fn accumulate(&mut self, other: &IoCounters) {
        self.seq_requests += other.seq_requests;
        self.seq_bytes += other.seq_bytes;
        self.rand_requests += other.rand_requests;
        self.rand_bytes += other.rand_bytes;
        self.bounce_bytes += other.bounce_bytes;
        self.logical_bytes += other.logical_bytes;
    }

    /// Zeroes every count in place.
    pub fn reset(&mut self) {
        *self = IoCounters::default();
    }

    /// The counts accumulated since `earlier` was snapshotted — the
    /// per-epoch delta behind epoch-over-epoch read-amplification
    /// reporting. Counters are monotonic, so every field of `earlier`
    /// must be ≤ the corresponding field of `self` (saturating
    /// otherwise, so a stale snapshot degrades to zero, not underflow).
    pub fn delta_since(&self, earlier: &IoCounters) -> IoCounters {
        IoCounters {
            seq_requests: self.seq_requests.saturating_sub(earlier.seq_requests),
            seq_bytes: self.seq_bytes.saturating_sub(earlier.seq_bytes),
            rand_requests: self.rand_requests.saturating_sub(earlier.rand_requests),
            rand_bytes: self.rand_bytes.saturating_sub(earlier.rand_bytes),
            bounce_bytes: self.bounce_bytes.saturating_sub(earlier.bounce_bytes),
            logical_bytes: self.logical_bytes.saturating_sub(earlier.logical_bytes),
        }
    }
}

/// Writes a feature store to a directory: `manifest.txt` + one
/// `hop_<k>.ppgt` file per hop. Compressed dtypes encode each hop
/// through [`ppgnn_tensor::cast`] into a reusable staging buffer on the
/// calling thread (under [`crate::AsyncHopWriter`] that is the writer
/// thread, so encoding overlaps the next hop's diffusion for free).
#[derive(Debug)]
pub struct FeatureStoreWriter {
    dir: PathBuf,
    meta: StoreMeta,
    written: Vec<bool>,
    /// Encoded-payload staging buffer, reused across hops.
    enc: Vec<u8>,
}

impl FeatureStoreWriter {
    /// Creates the directory (if needed) and writes the manifest.
    ///
    /// # Errors
    ///
    /// Fails if the directory cannot be created or the manifest cannot be
    /// written, or if `meta` has a zero chunk size.
    pub fn create(dir: impl AsRef<Path>, meta: StoreMeta) -> Result<Self, DataIoError> {
        if meta.chunk_size == 0 {
            return Err(DataIoError::BadManifest(
                "chunk_size must be positive".into(),
            ));
        }
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        fs::write(dir.join(MANIFEST), meta.to_manifest())?;
        Ok(FeatureStoreWriter {
            written: vec![false; meta.num_hops],
            dir,
            meta,
            enc: Vec::new(),
        })
    }

    /// Writes hop `k`'s feature matrix to its own file.
    ///
    /// # Errors
    ///
    /// Fails if `k` is out of range, the matrix shape disagrees with the
    /// manifest, or I/O fails.
    pub fn write_hop(&mut self, k: usize, features: &Matrix) -> Result<(), DataIoError> {
        if k >= self.meta.num_hops {
            return Err(DataIoError::OutOfRange(format!(
                "hop {k} out of range ({} hops)",
                self.meta.num_hops
            )));
        }
        if features.shape() != (self.meta.rows, self.meta.cols) {
            return Err(DataIoError::BadManifest(format!(
                "hop {k} shape {:?} disagrees with manifest ({}, {})",
                features.shape(),
                self.meta.rows,
                self.meta.cols
            )));
        }
        let file = File::create(hop_path(&self.dir, k))?;
        let mut w = BufWriter::new(file);
        if self.meta.dtype.is_f32() {
            // The pre-dtype path, byte for byte: `f32` stores must stay
            // binary-identical to stores written before compression
            // existed (pinned by the FNV digest test).
            tio::write_matrix(&mut w, features).map_err(|e| DataIoError::Io(e.to_string()))?;
        } else {
            let nbytes = self.meta.rows * self.meta.dtype.encoded_row_bytes(self.meta.cols);
            self.enc.resize(nbytes, 0);
            cast::encode_rows(
                self.meta.dtype,
                features.as_slice(),
                self.meta.cols,
                &mut self.enc,
            );
            w.write_all(QMAGIC)?;
            w.write_all(&QVERSION.to_le_bytes())?;
            w.write_all(&(self.meta.rows as u64).to_le_bytes())?;
            w.write_all(&(self.meta.cols as u64).to_le_bytes())?;
            w.write_all(&dtype_code(self.meta.dtype).to_le_bytes())?;
            w.write_all(&self.enc)?;
        }
        w.flush()?;
        self.written[k] = true;
        Ok(())
    }

    /// Finishes writing, verifying every hop was stored.
    ///
    /// # Errors
    ///
    /// Fails listing the missing hops if any were never written.
    pub fn finish(self) -> Result<FeatureStore, DataIoError> {
        let missing: Vec<usize> = self
            .written
            .iter()
            .enumerate()
            .filter(|(_, &w)| !w)
            .map(|(k, _)| k)
            .collect();
        if !missing.is_empty() {
            return Err(DataIoError::BadManifest(format!(
                "hops never written: {missing:?}"
            )));
        }
        FeatureStore::open(&self.dir)
    }
}

fn hop_path(dir: &Path, k: usize) -> PathBuf {
    dir.join(format!("hop_{k}.ppgt"))
}

/// Read handle over a feature-store directory with I/O accounting.
///
/// Hop file handles are opened once and cached, and every read decodes
/// through one reusable byte-staging buffer — steady-state reads via
/// the `_into` entry points perform no allocation for any dtype.
#[derive(Debug)]
pub struct FeatureStore {
    meta: StoreMeta,
    /// One cached handle per hop file, indexed by hop.
    files: Vec<File>,
    /// Encoded-byte staging buffer shared by every read path; grows
    /// monotonically to the largest read seen.
    scratch: Vec<u8>,
    counters: IoCounters,
    /// Snapshot of `counters` at the last [`FeatureStore::take_epoch_counters`]
    /// call, so per-epoch deltas never disturb the cumulative totals.
    epoch_mark: IoCounters,
}

impl FeatureStore {
    /// Opens a store, validating the manifest and each hop file's header.
    ///
    /// # Errors
    ///
    /// Fails on missing/corrupt manifest, missing hop files, or header
    /// shapes that disagree with the manifest.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, DataIoError> {
        let dir = dir.as_ref().to_path_buf();
        let text = fs::read_to_string(dir.join(MANIFEST))
            .map_err(|e| DataIoError::Io(format!("{}: {e}", dir.display())))?;
        let meta = StoreMeta::from_manifest(&text)?;
        let mut files = Vec::with_capacity(meta.num_hops);
        for k in 0..meta.num_hops {
            let mut f = File::open(hop_path(&dir, k))
                .map_err(|e| DataIoError::Io(format!("hop {k}: {e}")))?;
            let (rows, cols) = if meta.dtype.is_f32() {
                tio::read_header(&mut f).map_err(|e| DataIoError::Corrupt(e.to_string()))?
            } else {
                read_qheader(&mut f, meta.dtype)?
            };
            if (rows, cols) != (meta.rows, meta.cols) {
                return Err(DataIoError::Corrupt(format!(
                    "hop {k} header ({rows},{cols}) disagrees with manifest ({},{})",
                    meta.rows, meta.cols
                )));
            }
            // validate payload length without reading it
            let expected =
                data_offset(meta.dtype) + (rows * meta.dtype.encoded_row_bytes(cols)) as u64;
            let actual = f.metadata()?.len();
            if actual < expected {
                return Err(DataIoError::Corrupt(format!(
                    "hop {k} file truncated: {actual} < {expected} bytes"
                )));
            }
            files.push(f);
        }
        // Pre-size the staging buffer for the common case (one chunk)
        // so loader steady state never grows it.
        let chunk_rows = meta.chunk_size.min(meta.rows);
        let scratch = vec![0u8; chunk_rows * meta.dtype.encoded_row_bytes(meta.cols)];
        Ok(FeatureStore {
            meta,
            files,
            scratch,
            counters: IoCounters::default(),
            epoch_mark: IoCounters::default(),
        })
    }

    /// Store metadata.
    pub fn meta(&self) -> &StoreMeta {
        &self.meta
    }

    /// Accumulated I/O counters.
    pub fn counters(&self) -> IoCounters {
        self.counters
    }

    /// Resets the I/O counters (between measured epochs).
    pub fn reset_counters(&mut self) {
        self.counters = IoCounters::default();
        self.epoch_mark = IoCounters::default();
    }

    /// The counters accumulated since the previous call (or since open /
    /// the last [`FeatureStore::reset_counters`]) — the per-epoch delta.
    /// Cumulative totals from [`FeatureStore::counters`] are untouched,
    /// so epoch-over-epoch read amplification is reportable without a
    /// process restart or a destructive reset.
    pub fn take_epoch_counters(&mut self) -> IoCounters {
        let delta = self.counters.delta_since(&self.epoch_mark);
        self.epoch_mark = self.counters;
        delta
    }

    /// Randomly reads individual `rows` of hop `k` — the SGD-RR storage
    /// access pattern (one request per row).
    ///
    /// # Errors
    ///
    /// Fails if `k` or any row index is out of range, or on I/O errors.
    pub fn read_rows(
        &mut self,
        k: usize,
        rows: &[usize],
        path: AccessPath,
    ) -> Result<Matrix, DataIoError> {
        let mut out = Matrix::default();
        self.read_rows_into(k, rows, path, &mut out)?;
        Ok(out)
    }

    /// [`FeatureStore::read_rows`] into a caller-owned matrix, resized
    /// in place — the allocation-free form batch loops reuse a slot
    /// through.
    ///
    /// # Errors
    ///
    /// Fails if `k` or any row index is out of range, or on I/O errors.
    /// Rows preceding an out-of-range index are read (and counted)
    /// before the error surfaces.
    pub fn read_rows_into(
        &mut self,
        k: usize,
        rows: &[usize],
        path: AccessPath,
        out: &mut Matrix,
    ) -> Result<(), DataIoError> {
        self.check_hop(k)?;
        out.resize_to(rows.len(), self.meta.cols);
        let logical = (self.meta.cols * 4) as u64;
        let mut physical_total = 0u64;
        for (i, &r) in rows.iter().enumerate() {
            if r >= self.meta.rows {
                STORE_RAND_BYTES.add(physical_total);
                STORE_LOGICAL_BYTES.add(logical * i as u64);
                return Err(DataIoError::OutOfRange(format!(
                    "row {r} out of range ({} rows)",
                    self.meta.rows
                )));
            }
            let physical = self.fetch_decode_rows(k, r, out.row_mut(i))?;
            self.counters.rand_requests += 1;
            self.counters.rand_bytes += physical;
            self.counters.logical_bytes += logical;
            physical_total += physical;
            if path == AccessPath::HostBounce {
                self.counters.bounce_bytes += physical;
            }
        }
        STORE_RAND_BYTES.add(physical_total);
        STORE_LOGICAL_BYTES.add(logical * rows.len() as u64);
        Ok(())
    }

    /// Sequentially reads chunk `chunk_id` of hop `k` (one request) — the
    /// chunk-reshuffling access pattern. The final chunk may be short.
    ///
    /// # Errors
    ///
    /// Fails if `k` or `chunk_id` is out of range, or on I/O errors.
    pub fn read_chunk(
        &mut self,
        k: usize,
        chunk_id: usize,
        path: AccessPath,
    ) -> Result<Matrix, DataIoError> {
        let mut out = Matrix::default();
        self.read_chunk_into(k, chunk_id, path, &mut out)?;
        Ok(out)
    }

    /// [`FeatureStore::read_chunk`] into a caller-owned matrix, resized
    /// in place: one seek + one read into the staging buffer, then one
    /// dtype decode — allocation-free once the slot and stage are warm.
    ///
    /// # Errors
    ///
    /// Fails if `k` or `chunk_id` is out of range, or on I/O errors.
    pub fn read_chunk_into(
        &mut self,
        k: usize,
        chunk_id: usize,
        path: AccessPath,
        out: &mut Matrix,
    ) -> Result<(), DataIoError> {
        self.check_hop(k)?;
        let num_chunks = self.meta.num_chunks();
        if chunk_id >= num_chunks {
            return Err(DataIoError::OutOfRange(format!(
                "chunk {chunk_id} out of range ({num_chunks} chunks)"
            )));
        }
        let start_row = chunk_id * self.meta.chunk_size;
        let rows = self.meta.chunk_size.min(self.meta.rows - start_row);
        out.resize_to(rows, self.meta.cols);
        let physical = self.fetch_decode_rows(k, start_row, out.as_mut_slice())?;
        self.counters.seq_requests += 1;
        self.counters.seq_bytes += physical;
        self.counters.logical_bytes += (rows * self.meta.cols * 4) as u64;
        STORE_SEQ_BYTES.add(physical);
        STORE_LOGICAL_BYTES.add((rows * self.meta.cols * 4) as u64);
        if path == AccessPath::HostBounce {
            self.counters.bounce_bytes += physical;
        }
        Ok(())
    }

    /// Reads chunk `chunk_id` across **all** hops (one request per hop file,
    /// the parallel-file layout of Section 4.3). The chunk-id bounds check
    /// happens up front, so an out-of-range request fails before any
    /// counter is touched — consistent with [`FeatureStore::read_rows`]'s
    /// count-as-you-read behaviour, where nothing valid precedes the error.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`FeatureStore::read_chunk`].
    pub fn read_chunk_all_hops(
        &mut self,
        chunk_id: usize,
        path: AccessPath,
    ) -> Result<Vec<Matrix>, DataIoError> {
        if chunk_id >= self.meta.num_chunks() {
            return Err(DataIoError::OutOfRange(format!(
                "chunk {chunk_id} out of range ({} chunks)",
                self.meta.num_chunks()
            )));
        }
        (0..self.meta.num_hops)
            .map(|k| self.read_chunk(k, chunk_id, path))
            .collect()
    }

    /// [`FeatureStore::read_chunk_all_hops`] into a caller-owned vector
    /// of per-hop slots, each resized in place — the double-buffered
    /// loader's steady-state refill shape.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`FeatureStore::read_chunk`].
    pub fn read_chunk_all_hops_into(
        &mut self,
        chunk_id: usize,
        path: AccessPath,
        out: &mut Vec<Matrix>,
    ) -> Result<(), DataIoError> {
        if chunk_id >= self.meta.num_chunks() {
            return Err(DataIoError::OutOfRange(format!(
                "chunk {chunk_id} out of range ({} chunks)",
                self.meta.num_chunks()
            )));
        }
        out.resize_with(self.meta.num_hops, Matrix::default);
        for (k, slot) in (0..self.meta.num_hops).zip(out.iter_mut()) {
            self.read_chunk_into(k, chunk_id, path, slot)?;
        }
        Ok(())
    }

    /// Reads an entire hop matrix (preloading path), counting one
    /// sequential request over the [`AccessPath::Direct`] path.
    ///
    /// # Errors
    ///
    /// Fails if `k` is out of range or the payload is corrupt.
    pub fn read_full_hop(&mut self, k: usize) -> Result<Matrix, DataIoError> {
        self.read_full_hop_via(k, AccessPath::Direct)
    }

    /// [`FeatureStore::read_full_hop`] with an explicit access path, so
    /// full-hop preloads account bounce-buffer copies the same way
    /// [`FeatureStore::read_rows`] and [`FeatureStore::read_chunk`] do:
    /// one sequential request, payload bytes, plus `bounce_bytes` when the
    /// read goes through the host staging buffer.
    ///
    /// # Errors
    ///
    /// Fails if `k` is out of range or the payload is corrupt.
    pub fn read_full_hop_via(&mut self, k: usize, path: AccessPath) -> Result<Matrix, DataIoError> {
        let mut out = Matrix::default();
        self.read_full_hop_into(k, path, &mut out)?;
        Ok(out)
    }

    /// [`FeatureStore::read_full_hop_via`] into a caller-owned matrix,
    /// resized in place.
    ///
    /// # Errors
    ///
    /// Fails if `k` is out of range or the payload is corrupt.
    pub fn read_full_hop_into(
        &mut self,
        k: usize,
        path: AccessPath,
        out: &mut Matrix,
    ) -> Result<(), DataIoError> {
        self.check_hop(k)?;
        out.resize_to(self.meta.rows, self.meta.cols);
        let physical = self.fetch_decode_rows(k, 0, out.as_mut_slice())?;
        self.counters.seq_requests += 1;
        self.counters.seq_bytes += physical;
        self.counters.logical_bytes += (self.meta.rows * self.meta.cols * 4) as u64;
        STORE_SEQ_BYTES.add(physical);
        STORE_LOGICAL_BYTES.add((self.meta.rows * self.meta.cols * 4) as u64);
        if path == AccessPath::HostBounce {
            self.counters.bounce_bytes += physical;
        }
        Ok(())
    }

    /// The one decode loop behind every read path (replacing the three
    /// hand-rolled `f32::from_le_bytes` loops of the `f32`-only store):
    /// seeks hop `k`'s cached handle to `start_row`, reads the encoded
    /// rows covering `out` into the staging buffer, and decodes them
    /// with the dispatched [`ppgnn_tensor::cast`] kernels. Returns the
    /// physical bytes moved. Allocation-free once the staging buffer
    /// has grown to the read size.
    fn fetch_decode_rows(
        &mut self,
        k: usize,
        start_row: usize,
        out: &mut [f32],
    ) -> Result<u64, DataIoError> {
        if out.is_empty() {
            return Ok(0);
        }
        let cols = self.meta.cols;
        let enc_row = self.meta.dtype.encoded_row_bytes(cols);
        debug_assert_eq!(out.len() % cols, 0);
        let nrows = out.len() / cols;
        let nbytes = nrows * enc_row;
        if self.scratch.len() < nbytes {
            self.scratch.resize(nbytes, 0);
        }
        let mut f = &self.files[k];
        let offset = data_offset(self.meta.dtype) + (start_row * enc_row) as u64;
        f.seek(SeekFrom::Start(offset))?;
        f.read_exact(&mut self.scratch[..nbytes])?;
        cast::decode_rows(self.meta.dtype, &self.scratch[..nbytes], cols, out);
        Ok(nbytes as u64)
    }

    fn check_hop(&self, k: usize) -> Result<(), DataIoError> {
        if k >= self.meta.num_hops {
            return Err(DataIoError::OutOfRange(format!(
                "hop {k} out of range ({} hops)",
                self.meta.num_hops
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ppgnn-store-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample_meta() -> StoreMeta {
        StoreMeta {
            dataset: "test".into(),
            num_hops: 3,
            rows: 10,
            cols: 4,
            chunk_size: 4,
            dtype: StoreDtype::F32,
        }
    }

    fn build_store(dir: &Path) -> FeatureStore {
        let meta = sample_meta();
        let mut w = FeatureStoreWriter::create(dir, meta).unwrap();
        for k in 0..3 {
            let m = Matrix::from_fn(10, 4, |r, c| (k * 1000 + r * 10 + c) as f32);
            w.write_hop(k, &m).unwrap();
        }
        w.finish().unwrap()
    }

    #[test]
    fn round_trip_rows_and_chunks() {
        let dir = temp_dir("roundtrip");
        let mut store = build_store(&dir);
        // random rows
        let rows = store.read_rows(1, &[7, 0, 3], AccessPath::Direct).unwrap();
        assert_eq!(rows.get(0, 2), 1072.0);
        assert_eq!(rows.get(1, 0), 1000.0);
        // chunk 1 = rows 4..8
        let chunk = store.read_chunk(2, 1, AccessPath::Direct).unwrap();
        assert_eq!(chunk.rows(), 4);
        assert_eq!(chunk.get(0, 0), 2040.0);
        // last chunk is short: rows 8..10
        let last = store.read_chunk(0, 2, AccessPath::Direct).unwrap();
        assert_eq!(last.rows(), 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn counters_distinguish_access_patterns() {
        let dir = temp_dir("counters");
        let mut store = build_store(&dir);
        store.read_rows(0, &[1, 2, 3], AccessPath::Direct).unwrap();
        let c = store.counters();
        assert_eq!(c.rand_requests, 3);
        assert_eq!(c.rand_bytes, 3 * 16);
        assert_eq!(c.seq_requests, 0);
        assert_eq!(c.bounce_bytes, 0);

        store.reset_counters();
        store
            .read_chunk_all_hops(0, AccessPath::HostBounce)
            .unwrap();
        let c = store.counters();
        assert_eq!(c.seq_requests, 3); // one per hop file
        assert_eq!(c.seq_bytes, 3 * 4 * 16);
        assert_eq!(c.bounce_bytes, c.seq_bytes);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn chunked_reads_issue_far_fewer_requests_than_row_reads() {
        // the quantitative heart of Section 4.3
        let dir = temp_dir("requests");
        let mut store = build_store(&dir);
        let all: Vec<usize> = (0..10).collect();
        store.read_rows(0, &all, AccessPath::Direct).unwrap();
        let rand_reqs = store.counters().rand_requests;
        store.reset_counters();
        for c in 0..store.meta().num_chunks() {
            store.read_chunk(0, c, AccessPath::Direct).unwrap();
        }
        let seq_reqs = store.counters().seq_requests;
        assert!(seq_reqs * 3 <= rand_reqs, "{seq_reqs} vs {rand_reqs}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_rejects_truncated_files() {
        let dir = temp_dir("truncated");
        build_store(&dir);
        // truncate hop 1
        let path = dir.join("hop_1.ppgt");
        let full = fs::read(&path).unwrap();
        fs::write(&path, &full[..full.len() - 10]).unwrap();
        let err = FeatureStore::open(&dir).unwrap_err();
        assert!(matches!(err, DataIoError::Corrupt(_)), "{err}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_rejects_bad_manifest() {
        let dir = temp_dir("manifest");
        build_store(&dir);
        fs::write(dir.join(MANIFEST), "dataset=x\nnum_hops=nope\n").unwrap();
        assert!(matches!(
            FeatureStore::open(&dir),
            Err(DataIoError::BadManifest(_))
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn writer_refuses_wrong_shapes_and_incomplete_stores() {
        let dir = temp_dir("writer");
        let mut w = FeatureStoreWriter::create(&dir, sample_meta()).unwrap();
        assert!(matches!(
            w.write_hop(0, &Matrix::zeros(5, 4)),
            Err(DataIoError::BadManifest(_))
        ));
        assert!(matches!(
            w.write_hop(9, &Matrix::zeros(10, 4)),
            Err(DataIoError::OutOfRange(_))
        ));
        w.write_hop(0, &Matrix::zeros(10, 4)).unwrap();
        let err = w.finish().unwrap_err();
        assert!(err.to_string().contains("never written"), "{err}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn out_of_range_requests_fail_cleanly() {
        let dir = temp_dir("range");
        let mut store = build_store(&dir);
        assert!(store.read_rows(0, &[99], AccessPath::Direct).is_err());
        assert!(store.read_chunk(0, 99, AccessPath::Direct).is_err());
        assert!(store.read_chunk(9, 0, AccessPath::Direct).is_err());
        assert!(store.read_full_hop(9).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn full_hop_read_matches_written_matrix() {
        let dir = temp_dir("full");
        let mut store = build_store(&dir);
        let m = store.read_full_hop(1).unwrap();
        assert_eq!(m.shape(), (10, 4));
        assert_eq!(m.get(9, 3), 1093.0);
        fs::remove_dir_all(&dir).unwrap();
    }

    fn build_store_with_dtype(dir: &Path, dtype: StoreDtype) -> FeatureStore {
        let meta = StoreMeta {
            dtype,
            ..sample_meta()
        };
        let mut w = FeatureStoreWriter::create(dir, meta).unwrap();
        for k in 0..3 {
            let m = Matrix::from_fn(10, 4, |r, c| (k * 1000 + r * 10 + c) as f32);
            w.write_hop(k, &m).unwrap();
        }
        w.finish().unwrap()
    }

    #[test]
    fn compressed_dtypes_round_trip_within_tolerance() {
        for dtype in StoreDtype::ALL {
            let dir = temp_dir(&format!("dtype-{dtype}"));
            let mut store = build_store_with_dtype(&dir, dtype);
            assert_eq!(store.meta().dtype, dtype);
            // The stored values (≤ 2093) are small integers; every
            // encoding must reconstruct them within its step size.
            let tol = match dtype {
                StoreDtype::F32 => 0.0,
                StoreDtype::F16 => 2.0,         // 2093 has ulp 1 in f16
                StoreDtype::Bf16 => 16.0,       // 8-bit mantissa
                StoreDtype::Int8 => 39.0 / 2.0, // row range ≤ 39 → step/2
            };
            for k in 0..3 {
                let full = store.read_full_hop(k).unwrap();
                for r in 0..10 {
                    for c in 0..4 {
                        let want = (k * 1000 + r * 10 + c) as f32;
                        let got = full.get(r, c);
                        assert!(
                            (want - got).abs() <= tol,
                            "{dtype} hop {k} ({r},{c}): {got} vs {want}"
                        );
                    }
                }
                // Row and chunk paths decode identically to the full hop.
                let rows = store.read_rows(k, &[3, 9, 0], AccessPath::Direct).unwrap();
                for (i, &r) in [3usize, 9, 0].iter().enumerate() {
                    for c in 0..4 {
                        assert_eq!(rows.get(i, c).to_bits(), full.get(r, c).to_bits());
                    }
                }
                let chunk = store.read_chunk(k, 1, AccessPath::Direct).unwrap();
                for r in 0..4 {
                    for c in 0..4 {
                        assert_eq!(chunk.get(r, c).to_bits(), full.get(4 + r, c).to_bits());
                    }
                }
            }
            fs::remove_dir_all(&dir).unwrap();
        }
    }

    #[test]
    fn physical_bytes_halve_for_f16_and_counters_track_both() {
        let dir = temp_dir("halved");
        let mut store = build_store_with_dtype(&dir, StoreDtype::F16);
        assert_eq!(
            store.meta().physical_bytes() * 2,
            store.meta().total_bytes()
        );
        store.read_chunk(0, 0, AccessPath::Direct).unwrap();
        let c = store.counters();
        assert_eq!(c.seq_bytes, 4 * 4 * 2); // 4 rows × 4 cols × 2 B
        assert_eq!(c.logical_bytes, 4 * 4 * 4);
        assert_eq!(c.compression_ratio(), 2.0);
        store.reset_counters();
        store.read_rows(1, &[0, 5], AccessPath::HostBounce).unwrap();
        let c = store.counters();
        assert_eq!(c.rand_bytes, 2 * 4 * 2);
        assert_eq!(c.bounce_bytes, c.rand_bytes); // bounce copies physical bytes
        assert_eq!(c.logical_bytes, 2 * 4 * 4);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn int8_hop_files_carry_per_row_params() {
        let dir = temp_dir("int8-size");
        let store = build_store_with_dtype(&dir, StoreDtype::Int8);
        let on_disk = fs::metadata(dir.join("hop_0.ppgt")).unwrap().len();
        // PPGQ header + rows × (8-byte params + cols payload).
        assert_eq!(on_disk, QHEADER_BYTES as u64 + 10 * (8 + 4));
        assert_eq!(store.meta().physical_bytes(), 3 * 10 * (8 + 4));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compressed_manifests_self_describe_and_reject_garbage() {
        let meta = StoreMeta {
            dtype: StoreDtype::Bf16,
            ..sample_meta()
        };
        let text = meta.to_manifest();
        assert!(text.contains("dtype=bf16"));
        assert_eq!(StoreMeta::from_manifest(&text).unwrap(), meta);
        let bad = text.replace("dtype=bf16", "dtype=float8");
        assert!(matches!(
            StoreMeta::from_manifest(&bad),
            Err(DataIoError::BadManifest(_))
        ));
    }

    #[test]
    fn f32_manifest_omits_dtype_key() {
        // Byte-identity with pre-dtype stores: default manifests must
        // not change (the digest pin test covers the full store).
        let text = sample_meta().to_manifest();
        assert!(!text.contains("dtype"));
    }

    #[test]
    fn compressed_open_rejects_dtype_mismatch_and_truncation() {
        let dir = temp_dir("qmismatch");
        build_store_with_dtype(&dir, StoreDtype::F16);
        // Lie about the dtype in the manifest: the PPGQ header check
        // must catch the disagreement.
        let manifest = fs::read_to_string(dir.join(MANIFEST)).unwrap();
        fs::write(
            dir.join(MANIFEST),
            manifest.replace("dtype=f16", "dtype=int8"),
        )
        .unwrap();
        assert!(matches!(
            FeatureStore::open(&dir),
            Err(DataIoError::Corrupt(_))
        ));
        fs::write(dir.join(MANIFEST), manifest).unwrap();
        let path = dir.join("hop_2.ppgt");
        let full = fs::read(&path).unwrap();
        fs::write(&path, &full[..full.len() - 3]).unwrap();
        assert!(matches!(
            FeatureStore::open(&dir),
            Err(DataIoError::Corrupt(_))
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn into_reads_reuse_caller_slots() {
        let dir = temp_dir("slots");
        let mut store = build_store_with_dtype(&dir, StoreDtype::Int8);
        let mut slot = Matrix::default();
        store
            .read_chunk_into(0, 2, AccessPath::Direct, &mut slot)
            .unwrap();
        assert_eq!(slot.shape(), (2, 4)); // short final chunk
        store
            .read_full_hop_into(1, AccessPath::Direct, &mut slot)
            .unwrap();
        assert_eq!(slot.shape(), (10, 4));
        let mut hops = Vec::new();
        store
            .read_chunk_all_hops_into(0, AccessPath::Direct, &mut hops)
            .unwrap();
        assert_eq!(hops.len(), 3);
        assert_eq!(hops[2].shape(), (4, 4));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn manifest_round_trips_and_ignores_unknown_keys() {
        let meta = sample_meta();
        let mut text = meta.to_manifest();
        text.push_str("future_key=whatever\n");
        let parsed = StoreMeta::from_manifest(&text).unwrap();
        assert_eq!(parsed, meta);
        assert_eq!(parsed.num_chunks(), 3);
        assert_eq!(parsed.total_bytes(), 3 * 10 * 4 * 4);
    }
}
