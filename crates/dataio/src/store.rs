use std::fs::{self, File};
use std::io::{Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};

use ppgnn_tensor::cast::{self, StoreDtype};
use ppgnn_tensor::{io as tio, Matrix};

use crate::commit::{self, Journal};
use crate::error::CorruptError;
use crate::fault;
use crate::DataIoError;

/// Global telemetry mirrors of the per-store [`IoCounters`], so traced
/// runs see storage traffic in the metrics registry without plumbing a
/// store handle to the report site. Counters only — the per-row read
/// loop is a hot path, so values are accumulated locally and flushed
/// once per call.
static STORE_SEQ_BYTES: ppgnn_telemetry::Counter = ppgnn_telemetry::Counter::new("store.seq_bytes");
static STORE_RAND_BYTES: ppgnn_telemetry::Counter =
    ppgnn_telemetry::Counter::new("store.rand_bytes");
static STORE_LOGICAL_BYTES: ppgnn_telemetry::Counter =
    ppgnn_telemetry::Counter::new("store.logical_bytes");

const MANIFEST: &str = "manifest.txt";

/// Magic of the compressed (`f16`/`bf16`/`int8`) hop-file format. `f32`
/// hops keep the `PPGT` format byte-for-byte.
const QMAGIC: &[u8; 4] = b"PPGQ";
const QVERSION: u32 = 1;
/// `PPGQ` header: magic + version + rows `u64` + cols `u64` + dtype
/// code `u32`.
const QHEADER_BYTES: usize = 4 + 4 + 8 + 8 + 4;

/// Magic of the per-chunk checksum footer appended after the payload of
/// every hop file (both `PPGT` and `PPGQ`) since the crash-safety
/// container revision. Legacy footer-less files are detected by length
/// and still load — they just skip read-side verification.
const FOOTER_MAGIC: &[u8; 4] = b"PPGC";
const FOOTER_VERSION: u32 = 1;

/// Footer size for `n` chunks: magic + version + chunk count `u64` +
/// one FNV-1a `u64` per chunk.
const fn footer_len(n: usize) -> u64 {
    (4 + 4 + 8 + 8 * n) as u64
}

/// FNV-1a over a byte slice — the checksum of one hop chunk's encoded
/// payload bytes.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// On-disk dtype code of the `PPGQ` header (`f32` never appears — it
/// stays in the `PPGT` format).
fn dtype_code(dtype: StoreDtype) -> u32 {
    match dtype {
        StoreDtype::F32 => 0,
        StoreDtype::F16 => 1,
        StoreDtype::Bf16 => 2,
        StoreDtype::Int8 => 3,
    }
}

/// Byte offset of the first encoded row in a hop file of `dtype`.
fn data_offset(dtype: StoreDtype) -> u64 {
    if dtype.is_f32() {
        tio::HEADER_BYTES as u64
    } else {
        QHEADER_BYTES as u64
    }
}

/// Reads and validates a `PPGQ` header against the manifest's `dtype`,
/// returning `(rows, cols)`.
fn read_qheader(mut r: impl Read, dtype: StoreDtype) -> Result<(usize, usize), DataIoError> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != QMAGIC {
        return Err(DataIoError::corrupt(format!(
            "bad magic {magic:?}, expected {QMAGIC:?} for a {dtype} hop"
        )));
    }
    let mut word = [0u8; 4];
    r.read_exact(&mut word)?;
    let version = u32::from_le_bytes(word);
    if version != QVERSION {
        return Err(DataIoError::corrupt(format!(
            "unsupported PPGQ version {version}"
        )));
    }
    let mut dim = [0u8; 8];
    r.read_exact(&mut dim)?;
    let rows = u64::from_le_bytes(dim) as usize;
    r.read_exact(&mut dim)?;
    let cols = u64::from_le_bytes(dim) as usize;
    r.read_exact(&mut word)?;
    let code = u32::from_le_bytes(word);
    if code != dtype_code(dtype) {
        return Err(DataIoError::corrupt(format!(
            "hop file dtype code {code} disagrees with manifest dtype {dtype}"
        )));
    }
    Ok((rows, cols))
}

/// Store-level metadata persisted in `manifest.txt` (simple `key=value`
/// lines; no external parser dependency).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreMeta {
    /// Dataset name the features were preprocessed from.
    pub dataset: String,
    /// Number of hop files (`R + 1`).
    pub num_hops: usize,
    /// Rows per hop file (training-relevant nodes).
    pub rows: usize,
    /// Feature dimension per hop.
    pub cols: usize,
    /// Rows per chunk for chunked access.
    pub chunk_size: usize,
    /// Element encoding of the hop payloads. [`StoreDtype::F32`] keeps
    /// the manifest and hop files byte-identical to pre-dtype stores
    /// (the `dtype=` key is only written for compressed encodings, and
    /// old readers ignore unknown keys).
    pub dtype: StoreDtype,
}

impl StoreMeta {
    fn to_manifest(&self) -> String {
        let mut text = format!(
            "dataset={}\nnum_hops={}\nrows={}\ncols={}\nchunk_size={}\n",
            self.dataset, self.num_hops, self.rows, self.cols, self.chunk_size
        );
        if !self.dtype.is_f32() {
            text.push_str(&format!("dtype={}\n", self.dtype.name()));
        }
        text
    }

    fn from_manifest(text: &str) -> Result<Self, DataIoError> {
        let mut dataset = None;
        let mut num_hops = None;
        let mut rows = None;
        let mut cols = None;
        let mut chunk_size = None;
        let mut dtype = StoreDtype::F32;
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let (k, v) = line
                .split_once('=')
                .ok_or_else(|| DataIoError::BadManifest(format!("bad line: {line}")))?;
            let parse = |v: &str| {
                v.parse::<usize>()
                    .map_err(|_| DataIoError::BadManifest(format!("bad value for {k}: {v}")))
            };
            match k {
                "dataset" => dataset = Some(v.to_string()),
                "num_hops" => num_hops = Some(parse(v)?),
                "rows" => rows = Some(parse(v)?),
                "cols" => cols = Some(parse(v)?),
                "chunk_size" => chunk_size = Some(parse(v)?),
                "dtype" => {
                    dtype = StoreDtype::parse(v).ok_or_else(|| {
                        DataIoError::BadManifest(format!("unknown store dtype: {v}"))
                    })?;
                }
                _ => {} // forward compatible: unknown keys ignored
            }
        }
        let missing = |f: &str| DataIoError::BadManifest(format!("missing key {f}"));
        Ok(StoreMeta {
            dataset: dataset.ok_or_else(|| missing("dataset"))?,
            num_hops: num_hops.ok_or_else(|| missing("num_hops"))?,
            rows: rows.ok_or_else(|| missing("rows"))?,
            cols: cols.ok_or_else(|| missing("cols"))?,
            chunk_size: chunk_size.ok_or_else(|| missing("chunk_size"))?,
            dtype,
        })
    }

    /// The geometry string the completed-units journal is bound to: a
    /// journal written for a different store shape must not be replayed.
    pub(crate) fn geometry_key(&self) -> String {
        format!(
            "{}:{}:{}:{}:{}:{}",
            self.num_hops,
            self.rows,
            self.cols,
            self.chunk_size,
            self.dtype.name(),
            self.dataset
        )
    }

    /// On-disk length of one committed hop file: header + encoded
    /// payload + checksum footer.
    pub(crate) fn expected_hop_file_len(&self) -> u64 {
        data_offset(self.dtype)
            + (self.rows * self.dtype.encoded_row_bytes(self.cols)) as u64
            + footer_len(self.num_chunks())
    }

    /// Number of chunks per hop file (last chunk may be partial).
    pub fn num_chunks(&self) -> usize {
        if self.rows == 0 {
            0
        } else {
            self.rows.div_ceil(self.chunk_size)
        }
    }

    /// Total **logical** bytes across all hop files — the decoded `f32`
    /// payload the trainer consumes, independent of the stored encoding.
    pub fn total_bytes(&self) -> u64 {
        (self.num_hops * self.rows * self.cols * 4) as u64
    }

    /// Total **physical** payload bytes across all hop files as encoded
    /// on disk (headers excluded). Equal to [`StoreMeta::total_bytes`]
    /// for `f32`; half of it for the 16-bit encodings.
    pub fn physical_bytes(&self) -> u64 {
        (self.num_hops * self.rows * self.dtype.encoded_row_bytes(self.cols)) as u64
    }
}

/// Which copy path a read takes (GPUDirect analog vs host bounce buffer).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessPath {
    /// Storage → device buffer directly (NVIDIA GDS analog).
    Direct,
    /// Storage → host staging buffer → device buffer.
    HostBounce,
}

/// Byte/request accounting for one reader.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IoCounters {
    /// Sequential (chunk) read requests issued.
    pub seq_requests: u64,
    /// Bytes read sequentially.
    pub seq_bytes: u64,
    /// Random (row) read requests issued.
    pub rand_requests: u64,
    /// Bytes read randomly.
    pub rand_bytes: u64,
    /// Extra bytes copied through the host bounce buffer.
    pub bounce_bytes: u64,
    /// Decoded `f32` bytes delivered to callers. `seq_bytes` and
    /// `rand_bytes` count **physical** (encoded) bytes moved from
    /// storage; for an `f32` store the two coincide, and the gap is the
    /// bandwidth a compressed dtype saved.
    pub logical_bytes: u64,
}

impl IoCounters {
    /// Total physical bytes read from storage.
    pub fn total_bytes(&self) -> u64 {
        self.seq_bytes + self.rand_bytes
    }

    /// Logical-over-physical byte ratio (`1.0` for `f32` stores, `~2.0`
    /// for the 16-bit encodings); `1.0` when nothing was read.
    pub fn compression_ratio(&self) -> f64 {
        let physical = self.total_bytes();
        if physical == 0 {
            1.0
        } else {
            self.logical_bytes as f64 / physical as f64
        }
    }

    /// Adds `other`'s counts into `self` — used to aggregate counters
    /// across the partition stores of a sharded store.
    pub fn accumulate(&mut self, other: &IoCounters) {
        self.seq_requests += other.seq_requests;
        self.seq_bytes += other.seq_bytes;
        self.rand_requests += other.rand_requests;
        self.rand_bytes += other.rand_bytes;
        self.bounce_bytes += other.bounce_bytes;
        self.logical_bytes += other.logical_bytes;
    }

    /// Zeroes every count in place.
    pub fn reset(&mut self) {
        *self = IoCounters::default();
    }

    /// The counts accumulated since `earlier` was snapshotted — the
    /// per-epoch delta behind epoch-over-epoch read-amplification
    /// reporting. Counters are monotonic, so every field of `earlier`
    /// must be ≤ the corresponding field of `self` (saturating
    /// otherwise, so a stale snapshot degrades to zero, not underflow).
    pub fn delta_since(&self, earlier: &IoCounters) -> IoCounters {
        IoCounters {
            seq_requests: self.seq_requests.saturating_sub(earlier.seq_requests),
            seq_bytes: self.seq_bytes.saturating_sub(earlier.seq_bytes),
            rand_requests: self.rand_requests.saturating_sub(earlier.rand_requests),
            rand_bytes: self.rand_bytes.saturating_sub(earlier.rand_bytes),
            bounce_bytes: self.bounce_bytes.saturating_sub(earlier.bounce_bytes),
            logical_bytes: self.logical_bytes.saturating_sub(earlier.logical_bytes),
        }
    }
}

/// Writes a feature store to a directory: one `hop_<k>.ppgt` file per
/// hop, then `manifest.txt` last. Compressed dtypes encode each hop
/// through [`ppgnn_tensor::cast`] into a reusable staging buffer on the
/// calling thread (under [`crate::AsyncHopWriter`] that is the writer
/// thread, so encoding overlaps the next hop's diffusion for free).
///
/// Crash-safety contract: every hop file is committed atomically
/// (temp + fsync + rename) with a per-chunk checksum footer, each
/// commit is recorded in a fsynced journal, and the manifest — the
/// commit point [`FeatureStore::open`] keys off — is written only in
/// [`FeatureStoreWriter::finish`]. A run killed at any point leaves a
/// directory that either opens as a complete store (manifest landed) or
/// fails `open` with a located error, and
/// [`FeatureStoreWriter::create_or_resume`] replays the journal so only
/// the missing hops need recomputing.
#[derive(Debug)]
pub struct FeatureStoreWriter {
    dir: PathBuf,
    meta: StoreMeta,
    written: Vec<bool>,
    /// Hops the resumed journal proved committed — skippable by callers.
    resumed: Vec<bool>,
    /// Encoded-payload staging buffer, reused across hops.
    enc: Vec<u8>,
    /// Whole-file staging buffer (header + payload + footer), reused
    /// across hops; the atomic commit writes it in one shot.
    file_buf: Vec<u8>,
    journal: Option<Journal>,
}

impl FeatureStoreWriter {
    /// Creates the directory (if needed) and starts a fresh journal.
    /// The manifest is only written by [`FeatureStoreWriter::finish`],
    /// so an interrupted write never masquerades as a complete store.
    ///
    /// # Errors
    ///
    /// Fails if the directory or journal cannot be created, or if
    /// `meta` has a zero chunk size.
    pub fn create(dir: impl AsRef<Path>, meta: StoreMeta) -> Result<Self, DataIoError> {
        Self::build(dir, meta, false)
    }

    /// Like [`FeatureStoreWriter::create`], but replays an existing
    /// completed-units journal first: hops the journal records as done
    /// — re-verified against the expected committed file length — are
    /// marked written, and [`FeatureStoreWriter::resumed_hops`] reports
    /// them so callers can skip recomputing their inputs. A missing
    /// journal or one written for a different store geometry resumes
    /// nothing.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`FeatureStoreWriter::create`].
    pub fn create_or_resume(dir: impl AsRef<Path>, meta: StoreMeta) -> Result<Self, DataIoError> {
        Self::build(dir, meta, true)
    }

    fn build(dir: impl AsRef<Path>, meta: StoreMeta, resume: bool) -> Result<Self, DataIoError> {
        if meta.chunk_size == 0 {
            return Err(DataIoError::BadManifest(
                "chunk_size must be positive".into(),
            ));
        }
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        let geometry = meta.geometry_key();
        let mut written = vec![false; meta.num_hops];
        let journal = if resume {
            let (journal, done) = Journal::resume(&dir, &geometry)?;
            for k in done {
                // Trust the journal only as far as the bytes on disk
                // back it up: a committed hop file has exactly the
                // expected length (header + payload + footer).
                if k < meta.num_hops
                    && fs::metadata(hop_path(&dir, k))
                        .map(|m| m.len() == meta.expected_hop_file_len())
                        .unwrap_or(false)
                {
                    written[k] = true;
                }
            }
            journal
        } else {
            Journal::create(&dir, &geometry)?
        };
        Ok(FeatureStoreWriter {
            resumed: written.clone(),
            written,
            dir,
            meta,
            enc: Vec::new(),
            file_buf: Vec::new(),
            journal: Some(journal),
        })
    }

    /// Which hops a [`FeatureStoreWriter::create_or_resume`] replayed
    /// from the journal (all `false` for a fresh writer). Submitting
    /// one of these again is harmless — it rewrites identical bytes.
    pub fn resumed_hops(&self) -> &[bool] {
        &self.resumed
    }

    /// Writes hop `k`'s feature matrix to its own file: an atomic
    /// commit of header + encoded payload + per-chunk checksum footer,
    /// followed by a fsynced journal record.
    ///
    /// # Errors
    ///
    /// Fails if `k` is out of range, the matrix shape disagrees with the
    /// manifest, or I/O fails.
    pub fn write_hop(&mut self, k: usize, features: &Matrix) -> Result<(), DataIoError> {
        if k >= self.meta.num_hops {
            return Err(DataIoError::OutOfRange(format!(
                "hop {k} out of range ({} hops)",
                self.meta.num_hops
            )));
        }
        if features.shape() != (self.meta.rows, self.meta.cols) {
            return Err(DataIoError::BadManifest(format!(
                "hop {k} shape {:?} disagrees with manifest ({}, {})",
                features.shape(),
                self.meta.rows,
                self.meta.cols
            )));
        }
        self.file_buf.clear();
        if self.meta.dtype.is_f32() {
            // The `PPGT` header + payload bytes are unchanged from the
            // pre-dtype format; the container revision only appends the
            // checksum footer (the digest pin test covers the revision).
            tio::write_matrix(&mut self.file_buf, features)
                .map_err(|e| DataIoError::Io(e.to_string()))?;
        } else {
            let nbytes = self.meta.rows * self.meta.dtype.encoded_row_bytes(self.meta.cols);
            self.enc.resize(nbytes, 0);
            cast::encode_rows(
                self.meta.dtype,
                features.as_slice(),
                self.meta.cols,
                &mut self.enc,
            );
            self.file_buf.extend_from_slice(QMAGIC);
            self.file_buf.extend_from_slice(&QVERSION.to_le_bytes());
            self.file_buf
                .extend_from_slice(&(self.meta.rows as u64).to_le_bytes());
            self.file_buf
                .extend_from_slice(&(self.meta.cols as u64).to_le_bytes());
            self.file_buf
                .extend_from_slice(&dtype_code(self.meta.dtype).to_le_bytes());
            self.file_buf.extend_from_slice(&self.enc);
        }
        append_checksum_footer(&mut self.file_buf, &self.meta);
        commit::write_bytes_atomic("hop", &hop_path(&self.dir, k), &self.file_buf)?;
        if let Some(journal) = self.journal.as_mut() {
            journal.record(k)?;
        }
        self.written[k] = true;
        Ok(())
    }

    /// Finishes writing: verifies every hop was stored, then commits
    /// the manifest — the store's atomic commit point — and retires the
    /// journal.
    ///
    /// # Errors
    ///
    /// Fails listing the missing hops if any were never written, or on
    /// manifest-write I/O failure.
    pub fn finish(mut self) -> Result<FeatureStore, DataIoError> {
        let missing: Vec<usize> = self
            .written
            .iter()
            .enumerate()
            .filter(|(_, &w)| !w)
            .map(|(k, _)| k)
            .collect();
        if !missing.is_empty() {
            return Err(DataIoError::BadManifest(format!(
                "hops never written: {missing:?}"
            )));
        }
        commit::write_bytes_atomic(
            "manifest",
            &self.dir.join(MANIFEST),
            self.meta.to_manifest().as_bytes(),
        )?;
        if let Some(journal) = self.journal.take() {
            journal.remove();
        }
        FeatureStore::open(&self.dir)
    }
}

/// Computes the per-chunk FNV-1a checksums of the encoded payload
/// already staged in `buf` (everything after the header) and appends
/// the footer: magic, version, chunk count, one `u64` per chunk.
fn append_checksum_footer(buf: &mut Vec<u8>, meta: &StoreMeta) {
    let off = data_offset(meta.dtype) as usize;
    let enc_row = meta.dtype.encoded_row_bytes(meta.cols);
    let n = meta.num_chunks();
    buf.reserve(footer_len(n) as usize);
    buf.extend_from_slice(FOOTER_MAGIC);
    buf.extend_from_slice(&FOOTER_VERSION.to_le_bytes());
    buf.extend_from_slice(&(n as u64).to_le_bytes());
    for chunk in 0..n {
        let start_row = chunk * meta.chunk_size;
        let rows = meta.chunk_size.min(meta.rows - start_row);
        let start = off + start_row * enc_row;
        let sum = fnv1a(&buf[start..start + rows * enc_row]);
        buf.extend_from_slice(&sum.to_le_bytes());
    }
}

/// Reads and validates the checksum footer at `payload_end`, returning
/// the per-chunk sums.
fn read_checksum_footer(
    f: &mut File,
    payload_end: u64,
    meta: &StoreMeta,
) -> Result<Vec<u64>, DataIoError> {
    f.seek(SeekFrom::Start(payload_end))?;
    let mut magic = [0u8; 4];
    f.read_exact(&mut magic)?;
    if &magic != FOOTER_MAGIC {
        return Err(DataIoError::corrupt(format!(
            "bad checksum footer magic {magic:?}, expected {FOOTER_MAGIC:?}"
        )));
    }
    let mut word = [0u8; 4];
    f.read_exact(&mut word)?;
    let version = u32::from_le_bytes(word);
    if version != FOOTER_VERSION {
        return Err(DataIoError::corrupt(format!(
            "unsupported checksum footer version {version}"
        )));
    }
    let mut dword = [0u8; 8];
    f.read_exact(&mut dword)?;
    let count = u64::from_le_bytes(dword) as usize;
    if count != meta.num_chunks() {
        return Err(DataIoError::corrupt(format!(
            "checksum footer has {count} chunks, manifest implies {}",
            meta.num_chunks()
        )));
    }
    let mut sums = Vec::with_capacity(count);
    for _ in 0..count {
        f.read_exact(&mut dword)?;
        sums.push(u64::from_le_bytes(dword));
    }
    Ok(sums)
}

fn hop_path(dir: &Path, k: usize) -> PathBuf {
    dir.join(format!("hop_{k}.ppgt"))
}

/// Read handle over a feature-store directory with I/O accounting.
///
/// Hop file handles are opened once and cached, and every read decodes
/// through one reusable byte-staging buffer — steady-state reads via
/// the `_into` entry points perform no allocation for any dtype.
#[derive(Debug)]
pub struct FeatureStore {
    dir: PathBuf,
    meta: StoreMeta,
    /// One cached handle per hop file, indexed by hop.
    files: Vec<File>,
    /// Encoded-byte staging buffer shared by every read path; grows
    /// monotonically to the largest read seen.
    scratch: Vec<u8>,
    /// Per-hop chunk checksums from the footer; an empty inner vec
    /// marks a legacy footer-less file (no verification possible).
    sums: Vec<Vec<u64>>,
    /// Per-hop verified-chunk bitmaps (one bit per chunk): each chunk's
    /// checksum is verified on the first read touching it, then the bit
    /// short-circuits every later read — "verified on every read"
    /// without re-hashing hot loops.
    verified: Vec<Vec<u64>>,
    /// Staging buffer for checksum verification reads (one chunk),
    /// separate from `scratch` so verification never perturbs the
    /// caller-visible byte accounting.
    verify_buf: Vec<u8>,
    counters: IoCounters,
    /// Snapshot of `counters` at the last [`FeatureStore::take_epoch_counters`]
    /// call, so per-epoch deltas never disturb the cumulative totals.
    epoch_mark: IoCounters,
}

impl FeatureStore {
    /// Opens a store, validating the manifest, each hop file's header
    /// and length, and loading the per-chunk checksum footers (legacy
    /// footer-less files load with verification disabled).
    ///
    /// # Errors
    ///
    /// Fails on missing/corrupt manifest, missing hop files, header
    /// shapes that disagree with the manifest, or truncated/oversized
    /// hop files — always with path + hop context on the corruption.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, DataIoError> {
        let dir = dir.as_ref().to_path_buf();
        let text = fs::read_to_string(dir.join(MANIFEST))
            .map_err(|e| DataIoError::Io(format!("{}: {e}", dir.display())))?;
        let meta = StoreMeta::from_manifest(&text)?;
        let mut files = Vec::with_capacity(meta.num_hops);
        let mut sums = Vec::with_capacity(meta.num_hops);
        for k in 0..meta.num_hops {
            let path = hop_path(&dir, k);
            let locate = |c: CorruptError| c.with_path(&path).with_hop(k);
            let mut f = File::open(&path).map_err(|e| DataIoError::Io(format!("hop {k}: {e}")))?;
            let (rows, cols) = if meta.dtype.is_f32() {
                tio::read_header(&mut f).map_err(|e| locate(CorruptError::new(e.to_string())))?
            } else {
                read_qheader(&mut f, meta.dtype).map_err(|e| match e {
                    DataIoError::Corrupt(c) => DataIoError::Corrupt(locate(c)),
                    other => other,
                })?
            };
            if (rows, cols) != (meta.rows, meta.cols) {
                return Err(locate(CorruptError::new(format!(
                    "hop {k} header ({rows},{cols}) disagrees with manifest ({},{})",
                    meta.rows, meta.cols
                )))
                .into());
            }
            // Validate the file length without reading the payload. The
            // crash-safety container revision appends a checksum footer;
            // a file ending exactly at the payload is a legacy store and
            // still loads (verification skipped). Anything else is
            // corruption.
            let payload_end =
                data_offset(meta.dtype) + (rows * meta.dtype.encoded_row_bytes(cols)) as u64;
            let flen = footer_len(meta.num_chunks());
            let actual = f.metadata()?.len();
            if actual < payload_end {
                return Err(locate(CorruptError::new(format!(
                    "hop {k} file truncated: {actual} < {payload_end} bytes"
                )))
                .into());
            }
            if actual == payload_end {
                sums.push(Vec::new()); // legacy footer-less file
            } else if actual == payload_end + flen {
                sums.push(read_checksum_footer(&mut f, payload_end, &meta).map_err(
                    |e| match e {
                        DataIoError::Corrupt(c) => DataIoError::Corrupt(locate(c)),
                        other => other,
                    },
                )?);
            } else {
                return Err(locate(CorruptError::new(format!(
                    "hop {k} file truncated or trailing garbage: {actual} bytes, want \
                     {payload_end} (legacy) or {} (checksummed)",
                    payload_end + flen
                )))
                .into());
            }
            files.push(f);
        }
        // Pre-size the staging buffers for the common case (one chunk)
        // so loader steady state never grows them.
        let chunk_rows = meta.chunk_size.min(meta.rows);
        let chunk_bytes = chunk_rows * meta.dtype.encoded_row_bytes(meta.cols);
        let verified = vec![vec![0u64; meta.num_chunks().div_ceil(64)]; meta.num_hops];
        Ok(FeatureStore {
            dir,
            meta,
            files,
            scratch: vec![0u8; chunk_bytes],
            sums,
            verified,
            verify_buf: vec![0u8; chunk_bytes],
            counters: IoCounters::default(),
            epoch_mark: IoCounters::default(),
        })
    }

    /// Store metadata.
    pub fn meta(&self) -> &StoreMeta {
        &self.meta
    }

    /// Accumulated I/O counters.
    pub fn counters(&self) -> IoCounters {
        self.counters
    }

    /// Resets the I/O counters (between measured epochs).
    pub fn reset_counters(&mut self) {
        self.counters = IoCounters::default();
        self.epoch_mark = IoCounters::default();
    }

    /// The counters accumulated since the previous call (or since open /
    /// the last [`FeatureStore::reset_counters`]) — the per-epoch delta.
    /// Cumulative totals from [`FeatureStore::counters`] are untouched,
    /// so epoch-over-epoch read amplification is reportable without a
    /// process restart or a destructive reset.
    pub fn take_epoch_counters(&mut self) -> IoCounters {
        let delta = self.counters.delta_since(&self.epoch_mark);
        self.epoch_mark = self.counters;
        delta
    }

    /// Randomly reads individual `rows` of hop `k` — the SGD-RR storage
    /// access pattern (one request per row).
    ///
    /// # Errors
    ///
    /// Fails if `k` or any row index is out of range, or on I/O errors.
    pub fn read_rows(
        &mut self,
        k: usize,
        rows: &[usize],
        path: AccessPath,
    ) -> Result<Matrix, DataIoError> {
        let mut out = Matrix::default();
        self.read_rows_into(k, rows, path, &mut out)?;
        Ok(out)
    }

    /// [`FeatureStore::read_rows`] into a caller-owned matrix, resized
    /// in place — the allocation-free form batch loops reuse a slot
    /// through.
    ///
    /// # Errors
    ///
    /// Fails if `k` or any row index is out of range, or on I/O errors.
    /// Rows preceding an out-of-range index are read (and counted)
    /// before the error surfaces.
    pub fn read_rows_into(
        &mut self,
        k: usize,
        rows: &[usize],
        path: AccessPath,
        out: &mut Matrix,
    ) -> Result<(), DataIoError> {
        self.check_hop(k)?;
        out.resize_to(rows.len(), self.meta.cols);
        let logical = (self.meta.cols * 4) as u64;
        let mut physical_total = 0u64;
        for (i, &r) in rows.iter().enumerate() {
            if r >= self.meta.rows {
                STORE_RAND_BYTES.add(physical_total);
                STORE_LOGICAL_BYTES.add(logical * i as u64);
                return Err(DataIoError::OutOfRange(format!(
                    "row {r} out of range ({} rows)",
                    self.meta.rows
                )));
            }
            let physical = self.fetch_decode_rows(k, r, out.row_mut(i))?;
            self.counters.rand_requests += 1;
            self.counters.rand_bytes += physical;
            self.counters.logical_bytes += logical;
            physical_total += physical;
            if path == AccessPath::HostBounce {
                self.counters.bounce_bytes += physical;
            }
        }
        STORE_RAND_BYTES.add(physical_total);
        STORE_LOGICAL_BYTES.add(logical * rows.len() as u64);
        Ok(())
    }

    /// Sequentially reads chunk `chunk_id` of hop `k` (one request) — the
    /// chunk-reshuffling access pattern. The final chunk may be short.
    ///
    /// # Errors
    ///
    /// Fails if `k` or `chunk_id` is out of range, or on I/O errors.
    pub fn read_chunk(
        &mut self,
        k: usize,
        chunk_id: usize,
        path: AccessPath,
    ) -> Result<Matrix, DataIoError> {
        let mut out = Matrix::default();
        self.read_chunk_into(k, chunk_id, path, &mut out)?;
        Ok(out)
    }

    /// [`FeatureStore::read_chunk`] into a caller-owned matrix, resized
    /// in place: one seek + one read into the staging buffer, then one
    /// dtype decode — allocation-free once the slot and stage are warm.
    ///
    /// # Errors
    ///
    /// Fails if `k` or `chunk_id` is out of range, or on I/O errors.
    pub fn read_chunk_into(
        &mut self,
        k: usize,
        chunk_id: usize,
        path: AccessPath,
        out: &mut Matrix,
    ) -> Result<(), DataIoError> {
        self.check_hop(k)?;
        let num_chunks = self.meta.num_chunks();
        if chunk_id >= num_chunks {
            return Err(DataIoError::OutOfRange(format!(
                "chunk {chunk_id} out of range ({num_chunks} chunks)"
            )));
        }
        let start_row = chunk_id * self.meta.chunk_size;
        let rows = self.meta.chunk_size.min(self.meta.rows - start_row);
        out.resize_to(rows, self.meta.cols);
        let physical = self.fetch_decode_rows(k, start_row, out.as_mut_slice())?;
        self.counters.seq_requests += 1;
        self.counters.seq_bytes += physical;
        self.counters.logical_bytes += (rows * self.meta.cols * 4) as u64;
        STORE_SEQ_BYTES.add(physical);
        STORE_LOGICAL_BYTES.add((rows * self.meta.cols * 4) as u64);
        if path == AccessPath::HostBounce {
            self.counters.bounce_bytes += physical;
        }
        Ok(())
    }

    /// Reads chunk `chunk_id` across **all** hops (one request per hop file,
    /// the parallel-file layout of Section 4.3). The chunk-id bounds check
    /// happens up front, so an out-of-range request fails before any
    /// counter is touched — consistent with [`FeatureStore::read_rows`]'s
    /// count-as-you-read behaviour, where nothing valid precedes the error.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`FeatureStore::read_chunk`].
    pub fn read_chunk_all_hops(
        &mut self,
        chunk_id: usize,
        path: AccessPath,
    ) -> Result<Vec<Matrix>, DataIoError> {
        if chunk_id >= self.meta.num_chunks() {
            return Err(DataIoError::OutOfRange(format!(
                "chunk {chunk_id} out of range ({} chunks)",
                self.meta.num_chunks()
            )));
        }
        (0..self.meta.num_hops)
            .map(|k| self.read_chunk(k, chunk_id, path))
            .collect()
    }

    /// [`FeatureStore::read_chunk_all_hops`] into a caller-owned vector
    /// of per-hop slots, each resized in place — the double-buffered
    /// loader's steady-state refill shape.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`FeatureStore::read_chunk`].
    pub fn read_chunk_all_hops_into(
        &mut self,
        chunk_id: usize,
        path: AccessPath,
        out: &mut Vec<Matrix>,
    ) -> Result<(), DataIoError> {
        if chunk_id >= self.meta.num_chunks() {
            return Err(DataIoError::OutOfRange(format!(
                "chunk {chunk_id} out of range ({} chunks)",
                self.meta.num_chunks()
            )));
        }
        out.resize_with(self.meta.num_hops, Matrix::default);
        for (k, slot) in (0..self.meta.num_hops).zip(out.iter_mut()) {
            self.read_chunk_into(k, chunk_id, path, slot)?;
        }
        Ok(())
    }

    /// Reads an entire hop matrix (preloading path), counting one
    /// sequential request over the [`AccessPath::Direct`] path.
    ///
    /// # Errors
    ///
    /// Fails if `k` is out of range or the payload is corrupt.
    pub fn read_full_hop(&mut self, k: usize) -> Result<Matrix, DataIoError> {
        self.read_full_hop_via(k, AccessPath::Direct)
    }

    /// [`FeatureStore::read_full_hop`] with an explicit access path, so
    /// full-hop preloads account bounce-buffer copies the same way
    /// [`FeatureStore::read_rows`] and [`FeatureStore::read_chunk`] do:
    /// one sequential request, payload bytes, plus `bounce_bytes` when the
    /// read goes through the host staging buffer.
    ///
    /// # Errors
    ///
    /// Fails if `k` is out of range or the payload is corrupt.
    pub fn read_full_hop_via(&mut self, k: usize, path: AccessPath) -> Result<Matrix, DataIoError> {
        let mut out = Matrix::default();
        self.read_full_hop_into(k, path, &mut out)?;
        Ok(out)
    }

    /// [`FeatureStore::read_full_hop_via`] into a caller-owned matrix,
    /// resized in place.
    ///
    /// # Errors
    ///
    /// Fails if `k` is out of range or the payload is corrupt.
    pub fn read_full_hop_into(
        &mut self,
        k: usize,
        path: AccessPath,
        out: &mut Matrix,
    ) -> Result<(), DataIoError> {
        self.check_hop(k)?;
        out.resize_to(self.meta.rows, self.meta.cols);
        let physical = self.fetch_decode_rows(k, 0, out.as_mut_slice())?;
        self.counters.seq_requests += 1;
        self.counters.seq_bytes += physical;
        self.counters.logical_bytes += (self.meta.rows * self.meta.cols * 4) as u64;
        STORE_SEQ_BYTES.add(physical);
        STORE_LOGICAL_BYTES.add((self.meta.rows * self.meta.cols * 4) as u64);
        if path == AccessPath::HostBounce {
            self.counters.bounce_bytes += physical;
        }
        Ok(())
    }

    /// The one decode loop behind every read path (replacing the three
    /// hand-rolled `f32::from_le_bytes` loops of the `f32`-only store):
    /// seeks hop `k`'s cached handle to `start_row`, reads the encoded
    /// rows covering `out` into the staging buffer, and decodes them
    /// with the dispatched [`ppgnn_tensor::cast`] kernels. Returns the
    /// physical bytes moved. Allocation-free once the staging buffer
    /// has grown to the read size.
    fn fetch_decode_rows(
        &mut self,
        k: usize,
        start_row: usize,
        out: &mut [f32],
    ) -> Result<u64, DataIoError> {
        if out.is_empty() {
            return Ok(0);
        }
        if let Some(f) = fault::read_fault("read", &self.dir) {
            return Err(f.to_io_error().into());
        }
        let cols = self.meta.cols;
        let enc_row = self.meta.dtype.encoded_row_bytes(cols);
        debug_assert_eq!(out.len() % cols, 0);
        let nrows = out.len() / cols;
        self.verify_span(k, start_row, nrows)?;
        let nbytes = nrows * enc_row;
        if self.scratch.len() < nbytes {
            self.scratch.resize(nbytes, 0);
        }
        let mut f = &self.files[k];
        let offset = data_offset(self.meta.dtype) + (start_row * enc_row) as u64;
        f.seek(SeekFrom::Start(offset))?;
        f.read_exact(&mut self.scratch[..nbytes])?;
        cast::decode_rows(self.meta.dtype, &self.scratch[..nbytes], cols, out);
        Ok(nbytes as u64)
    }

    /// Ensures every chunk covering rows `start_row..start_row + nrows`
    /// of hop `k` has had its checksum verified against the footer.
    /// Each chunk is hashed once per open (the `verified` bitmap
    /// short-circuits later reads), through `verify_buf` so the
    /// caller-visible I/O counters never include verification traffic.
    /// Legacy footer-less hops skip verification entirely.
    fn verify_span(&mut self, k: usize, start_row: usize, nrows: usize) -> Result<(), DataIoError> {
        if self.sums[k].is_empty() {
            return Ok(());
        }
        let enc_row = self.meta.dtype.encoded_row_bytes(self.meta.cols);
        let first = start_row / self.meta.chunk_size;
        let last = (start_row + nrows - 1) / self.meta.chunk_size;
        for chunk in first..=last {
            let (word, bit) = (chunk / 64, chunk % 64);
            if self.verified[k][word] >> bit & 1 == 1 {
                continue;
            }
            let chunk_start = chunk * self.meta.chunk_size;
            let chunk_rows = self.meta.chunk_size.min(self.meta.rows - chunk_start);
            let nbytes = chunk_rows * enc_row;
            let mut f = &self.files[k];
            f.seek(SeekFrom::Start(
                data_offset(self.meta.dtype) + (chunk_start * enc_row) as u64,
            ))?;
            f.read_exact(&mut self.verify_buf[..nbytes])?;
            let computed = fnv1a(&self.verify_buf[..nbytes]);
            let stored = self.sums[k][chunk];
            if computed != stored {
                return Err(CorruptError::new(format!(
                    "chunk checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
                ))
                .with_path(&hop_path(&self.dir, k))
                .with_hop(k)
                .with_chunk(chunk)
                .into());
            }
            self.verified[k][word] |= 1 << bit;
        }
        Ok(())
    }

    fn check_hop(&self, k: usize) -> Result<(), DataIoError> {
        if k >= self.meta.num_hops {
            return Err(DataIoError::OutOfRange(format!(
                "hop {k} out of range ({} hops)",
                self.meta.num_hops
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ppgnn-store-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample_meta() -> StoreMeta {
        StoreMeta {
            dataset: "test".into(),
            num_hops: 3,
            rows: 10,
            cols: 4,
            chunk_size: 4,
            dtype: StoreDtype::F32,
        }
    }

    fn build_store(dir: &Path) -> FeatureStore {
        let meta = sample_meta();
        let mut w = FeatureStoreWriter::create(dir, meta).unwrap();
        for k in 0..3 {
            let m = Matrix::from_fn(10, 4, |r, c| (k * 1000 + r * 10 + c) as f32);
            w.write_hop(k, &m).unwrap();
        }
        w.finish().unwrap()
    }

    #[test]
    fn round_trip_rows_and_chunks() {
        let dir = temp_dir("roundtrip");
        let mut store = build_store(&dir);
        // random rows
        let rows = store.read_rows(1, &[7, 0, 3], AccessPath::Direct).unwrap();
        assert_eq!(rows.get(0, 2), 1072.0);
        assert_eq!(rows.get(1, 0), 1000.0);
        // chunk 1 = rows 4..8
        let chunk = store.read_chunk(2, 1, AccessPath::Direct).unwrap();
        assert_eq!(chunk.rows(), 4);
        assert_eq!(chunk.get(0, 0), 2040.0);
        // last chunk is short: rows 8..10
        let last = store.read_chunk(0, 2, AccessPath::Direct).unwrap();
        assert_eq!(last.rows(), 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn counters_distinguish_access_patterns() {
        let dir = temp_dir("counters");
        let mut store = build_store(&dir);
        store.read_rows(0, &[1, 2, 3], AccessPath::Direct).unwrap();
        let c = store.counters();
        assert_eq!(c.rand_requests, 3);
        assert_eq!(c.rand_bytes, 3 * 16);
        assert_eq!(c.seq_requests, 0);
        assert_eq!(c.bounce_bytes, 0);

        store.reset_counters();
        store
            .read_chunk_all_hops(0, AccessPath::HostBounce)
            .unwrap();
        let c = store.counters();
        assert_eq!(c.seq_requests, 3); // one per hop file
        assert_eq!(c.seq_bytes, 3 * 4 * 16);
        assert_eq!(c.bounce_bytes, c.seq_bytes);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn chunked_reads_issue_far_fewer_requests_than_row_reads() {
        // the quantitative heart of Section 4.3
        let dir = temp_dir("requests");
        let mut store = build_store(&dir);
        let all: Vec<usize> = (0..10).collect();
        store.read_rows(0, &all, AccessPath::Direct).unwrap();
        let rand_reqs = store.counters().rand_requests;
        store.reset_counters();
        for c in 0..store.meta().num_chunks() {
            store.read_chunk(0, c, AccessPath::Direct).unwrap();
        }
        let seq_reqs = store.counters().seq_requests;
        assert!(seq_reqs * 3 <= rand_reqs, "{seq_reqs} vs {rand_reqs}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_rejects_truncated_files() {
        let dir = temp_dir("truncated");
        build_store(&dir);
        // truncate hop 1
        let path = dir.join("hop_1.ppgt");
        let full = fs::read(&path).unwrap();
        fs::write(&path, &full[..full.len() - 10]).unwrap();
        let err = FeatureStore::open(&dir).unwrap_err();
        assert!(matches!(err, DataIoError::Corrupt(_)), "{err}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_rejects_bad_manifest() {
        let dir = temp_dir("manifest");
        build_store(&dir);
        fs::write(dir.join(MANIFEST), "dataset=x\nnum_hops=nope\n").unwrap();
        assert!(matches!(
            FeatureStore::open(&dir),
            Err(DataIoError::BadManifest(_))
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn writer_refuses_wrong_shapes_and_incomplete_stores() {
        let dir = temp_dir("writer");
        let mut w = FeatureStoreWriter::create(&dir, sample_meta()).unwrap();
        assert!(matches!(
            w.write_hop(0, &Matrix::zeros(5, 4)),
            Err(DataIoError::BadManifest(_))
        ));
        assert!(matches!(
            w.write_hop(9, &Matrix::zeros(10, 4)),
            Err(DataIoError::OutOfRange(_))
        ));
        w.write_hop(0, &Matrix::zeros(10, 4)).unwrap();
        let err = w.finish().unwrap_err();
        assert!(err.to_string().contains("never written"), "{err}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn out_of_range_requests_fail_cleanly() {
        let dir = temp_dir("range");
        let mut store = build_store(&dir);
        assert!(store.read_rows(0, &[99], AccessPath::Direct).is_err());
        assert!(store.read_chunk(0, 99, AccessPath::Direct).is_err());
        assert!(store.read_chunk(9, 0, AccessPath::Direct).is_err());
        assert!(store.read_full_hop(9).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn full_hop_read_matches_written_matrix() {
        let dir = temp_dir("full");
        let mut store = build_store(&dir);
        let m = store.read_full_hop(1).unwrap();
        assert_eq!(m.shape(), (10, 4));
        assert_eq!(m.get(9, 3), 1093.0);
        fs::remove_dir_all(&dir).unwrap();
    }

    fn build_store_with_dtype(dir: &Path, dtype: StoreDtype) -> FeatureStore {
        let meta = StoreMeta {
            dtype,
            ..sample_meta()
        };
        let mut w = FeatureStoreWriter::create(dir, meta).unwrap();
        for k in 0..3 {
            let m = Matrix::from_fn(10, 4, |r, c| (k * 1000 + r * 10 + c) as f32);
            w.write_hop(k, &m).unwrap();
        }
        w.finish().unwrap()
    }

    #[test]
    fn compressed_dtypes_round_trip_within_tolerance() {
        for dtype in StoreDtype::ALL {
            let dir = temp_dir(&format!("dtype-{dtype}"));
            let mut store = build_store_with_dtype(&dir, dtype);
            assert_eq!(store.meta().dtype, dtype);
            // The stored values (≤ 2093) are small integers; every
            // encoding must reconstruct them within its step size.
            let tol = match dtype {
                StoreDtype::F32 => 0.0,
                StoreDtype::F16 => 2.0,         // 2093 has ulp 1 in f16
                StoreDtype::Bf16 => 16.0,       // 8-bit mantissa
                StoreDtype::Int8 => 39.0 / 2.0, // row range ≤ 39 → step/2
            };
            for k in 0..3 {
                let full = store.read_full_hop(k).unwrap();
                for r in 0..10 {
                    for c in 0..4 {
                        let want = (k * 1000 + r * 10 + c) as f32;
                        let got = full.get(r, c);
                        assert!(
                            (want - got).abs() <= tol,
                            "{dtype} hop {k} ({r},{c}): {got} vs {want}"
                        );
                    }
                }
                // Row and chunk paths decode identically to the full hop.
                let rows = store.read_rows(k, &[3, 9, 0], AccessPath::Direct).unwrap();
                for (i, &r) in [3usize, 9, 0].iter().enumerate() {
                    for c in 0..4 {
                        assert_eq!(rows.get(i, c).to_bits(), full.get(r, c).to_bits());
                    }
                }
                let chunk = store.read_chunk(k, 1, AccessPath::Direct).unwrap();
                for r in 0..4 {
                    for c in 0..4 {
                        assert_eq!(chunk.get(r, c).to_bits(), full.get(4 + r, c).to_bits());
                    }
                }
            }
            fs::remove_dir_all(&dir).unwrap();
        }
    }

    #[test]
    fn physical_bytes_halve_for_f16_and_counters_track_both() {
        let dir = temp_dir("halved");
        let mut store = build_store_with_dtype(&dir, StoreDtype::F16);
        assert_eq!(
            store.meta().physical_bytes() * 2,
            store.meta().total_bytes()
        );
        store.read_chunk(0, 0, AccessPath::Direct).unwrap();
        let c = store.counters();
        assert_eq!(c.seq_bytes, 4 * 4 * 2); // 4 rows × 4 cols × 2 B
        assert_eq!(c.logical_bytes, 4 * 4 * 4);
        assert_eq!(c.compression_ratio(), 2.0);
        store.reset_counters();
        store.read_rows(1, &[0, 5], AccessPath::HostBounce).unwrap();
        let c = store.counters();
        assert_eq!(c.rand_bytes, 2 * 4 * 2);
        assert_eq!(c.bounce_bytes, c.rand_bytes); // bounce copies physical bytes
        assert_eq!(c.logical_bytes, 2 * 4 * 4);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn int8_hop_files_carry_per_row_params() {
        let dir = temp_dir("int8-size");
        let store = build_store_with_dtype(&dir, StoreDtype::Int8);
        let on_disk = fs::metadata(dir.join("hop_0.ppgt")).unwrap().len();
        // PPGQ header + rows × (8-byte params + cols payload) + the
        // per-chunk checksum footer (3 chunks at chunk_size 4).
        assert_eq!(on_disk, QHEADER_BYTES as u64 + 10 * (8 + 4) + footer_len(3));
        assert_eq!(store.meta().physical_bytes(), 3 * 10 * (8 + 4));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compressed_manifests_self_describe_and_reject_garbage() {
        let meta = StoreMeta {
            dtype: StoreDtype::Bf16,
            ..sample_meta()
        };
        let text = meta.to_manifest();
        assert!(text.contains("dtype=bf16"));
        assert_eq!(StoreMeta::from_manifest(&text).unwrap(), meta);
        let bad = text.replace("dtype=bf16", "dtype=float8");
        assert!(matches!(
            StoreMeta::from_manifest(&bad),
            Err(DataIoError::BadManifest(_))
        ));
    }

    #[test]
    fn f32_manifest_omits_dtype_key() {
        // Byte-identity with pre-dtype stores: default manifests must
        // not change (the digest pin test covers the full store).
        let text = sample_meta().to_manifest();
        assert!(!text.contains("dtype"));
    }

    #[test]
    fn compressed_open_rejects_dtype_mismatch_and_truncation() {
        let dir = temp_dir("qmismatch");
        build_store_with_dtype(&dir, StoreDtype::F16);
        // Lie about the dtype in the manifest: the PPGQ header check
        // must catch the disagreement.
        let manifest = fs::read_to_string(dir.join(MANIFEST)).unwrap();
        fs::write(
            dir.join(MANIFEST),
            manifest.replace("dtype=f16", "dtype=int8"),
        )
        .unwrap();
        assert!(matches!(
            FeatureStore::open(&dir),
            Err(DataIoError::Corrupt(_))
        ));
        fs::write(dir.join(MANIFEST), manifest).unwrap();
        let path = dir.join("hop_2.ppgt");
        let full = fs::read(&path).unwrap();
        fs::write(&path, &full[..full.len() - 3]).unwrap();
        assert!(matches!(
            FeatureStore::open(&dir),
            Err(DataIoError::Corrupt(_))
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn into_reads_reuse_caller_slots() {
        let dir = temp_dir("slots");
        let mut store = build_store_with_dtype(&dir, StoreDtype::Int8);
        let mut slot = Matrix::default();
        store
            .read_chunk_into(0, 2, AccessPath::Direct, &mut slot)
            .unwrap();
        assert_eq!(slot.shape(), (2, 4)); // short final chunk
        store
            .read_full_hop_into(1, AccessPath::Direct, &mut slot)
            .unwrap();
        assert_eq!(slot.shape(), (10, 4));
        let mut hops = Vec::new();
        store
            .read_chunk_all_hops_into(0, AccessPath::Direct, &mut hops)
            .unwrap();
        assert_eq!(hops.len(), 3);
        assert_eq!(hops[2].shape(), (4, 4));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bit_flips_are_caught_by_chunk_checksums_with_location() {
        for dtype in StoreDtype::ALL {
            let dir = temp_dir(&format!("flip-{dtype}"));
            build_store_with_dtype(&dir, dtype);
            // Flip one payload bit in hop 1, chunk 1 (rows 4..8) —
            // header and file length stay valid, so only the checksum
            // can catch it.
            let path = dir.join("hop_1.ppgt");
            let mut bytes = fs::read(&path).unwrap();
            let enc_row = dtype.encoded_row_bytes(4);
            let off = data_offset(dtype) as usize + 5 * enc_row + 1;
            bytes[off] ^= 0x10;
            fs::write(&path, &bytes).unwrap();

            let mut store = FeatureStore::open(&dir).expect("length and header still valid");
            let err = store.read_chunk(1, 1, AccessPath::Direct).unwrap_err();
            let DataIoError::Corrupt(c) = &err else {
                panic!("{dtype}: want Corrupt, got {err}");
            };
            assert_eq!(c.hop, Some(1), "{dtype}: {err}");
            assert_eq!(c.chunk, Some(1), "{dtype}: {err}");
            assert!(c.path.as_deref().unwrap().contains("hop_1.ppgt"));
            // Untouched chunks still read fine.
            store.read_chunk(1, 0, AccessPath::Direct).unwrap();
            store.read_chunk(0, 1, AccessPath::Direct).unwrap();
            fs::remove_dir_all(&dir).unwrap();
        }
    }

    #[test]
    fn legacy_footerless_stores_still_load_and_read() {
        let dir = temp_dir("legacy");
        build_store(&dir);
        // Strip the footers: the files end exactly at the payload, the
        // shape of every pre-revision store.
        for k in 0..3 {
            let path = dir.join(format!("hop_{k}.ppgt"));
            let bytes = fs::read(&path).unwrap();
            let keep = bytes.len() - footer_len(3) as usize;
            fs::write(&path, &bytes[..keep]).unwrap();
        }
        let mut store = FeatureStore::open(&dir).unwrap();
        let m = store.read_full_hop(2).unwrap();
        assert_eq!(m.get(9, 3), 2093.0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn interrupted_writer_leaves_no_manifest_and_resume_completes() {
        let dir = temp_dir("resume");
        let meta = sample_meta();
        let hop = |k: usize| Matrix::from_fn(10, 4, |r, c| (k * 1000 + r * 10 + c) as f32);
        let mut w = FeatureStoreWriter::create(&dir, meta.clone()).unwrap();
        w.write_hop(0, &hop(0)).unwrap();
        w.write_hop(2, &hop(2)).unwrap();
        drop(w); // "crash" before hop 1 and before finish

        // No manifest yet: the directory is detectably incomplete.
        assert!(matches!(FeatureStore::open(&dir), Err(DataIoError::Io(_))));

        let mut w = FeatureStoreWriter::create_or_resume(&dir, meta.clone()).unwrap();
        assert_eq!(w.resumed_hops(), &[true, false, true]);
        w.write_hop(1, &hop(1)).unwrap();
        let mut store = w.finish().unwrap();
        for k in 0..3 {
            assert_eq!(store.read_full_hop(k).unwrap().get(9, 3), hop(k).get(9, 3));
        }

        // A journal for different geometry resumes nothing.
        let dir2 = temp_dir("resume-geom");
        let mut w = FeatureStoreWriter::create(&dir2, meta.clone()).unwrap();
        w.write_hop(0, &hop(0)).unwrap();
        drop(w);
        let other = StoreMeta {
            chunk_size: 5,
            ..meta
        };
        let w = FeatureStoreWriter::create_or_resume(&dir2, other).unwrap();
        assert_eq!(w.resumed_hops(), &[false, false, false]);
        fs::remove_dir_all(&dir).unwrap();
        fs::remove_dir_all(&dir2).unwrap();
    }

    #[test]
    fn manifest_round_trips_and_ignores_unknown_keys() {
        let meta = sample_meta();
        let mut text = meta.to_manifest();
        text.push_str("future_key=whatever\n");
        let parsed = StoreMeta::from_manifest(&text).unwrap();
        assert_eq!(parsed, meta);
        assert_eq!(parsed.num_chunks(), 3);
        assert_eq!(parsed.total_bytes(), 3 * 10 * 4 * 4);
    }
}
