use std::fs::{self, File};
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use ppgnn_tensor::{io as tio, Matrix};

use crate::DataIoError;

const MANIFEST: &str = "manifest.txt";

/// Store-level metadata persisted in `manifest.txt` (simple `key=value`
/// lines; no external parser dependency).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreMeta {
    /// Dataset name the features were preprocessed from.
    pub dataset: String,
    /// Number of hop files (`R + 1`).
    pub num_hops: usize,
    /// Rows per hop file (training-relevant nodes).
    pub rows: usize,
    /// Feature dimension per hop.
    pub cols: usize,
    /// Rows per chunk for chunked access.
    pub chunk_size: usize,
}

impl StoreMeta {
    fn to_manifest(&self) -> String {
        format!(
            "dataset={}\nnum_hops={}\nrows={}\ncols={}\nchunk_size={}\n",
            self.dataset, self.num_hops, self.rows, self.cols, self.chunk_size
        )
    }

    fn from_manifest(text: &str) -> Result<Self, DataIoError> {
        let mut dataset = None;
        let mut num_hops = None;
        let mut rows = None;
        let mut cols = None;
        let mut chunk_size = None;
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let (k, v) = line
                .split_once('=')
                .ok_or_else(|| DataIoError::BadManifest(format!("bad line: {line}")))?;
            let parse = |v: &str| {
                v.parse::<usize>()
                    .map_err(|_| DataIoError::BadManifest(format!("bad value for {k}: {v}")))
            };
            match k {
                "dataset" => dataset = Some(v.to_string()),
                "num_hops" => num_hops = Some(parse(v)?),
                "rows" => rows = Some(parse(v)?),
                "cols" => cols = Some(parse(v)?),
                "chunk_size" => chunk_size = Some(parse(v)?),
                _ => {} // forward compatible: unknown keys ignored
            }
        }
        let missing = |f: &str| DataIoError::BadManifest(format!("missing key {f}"));
        Ok(StoreMeta {
            dataset: dataset.ok_or_else(|| missing("dataset"))?,
            num_hops: num_hops.ok_or_else(|| missing("num_hops"))?,
            rows: rows.ok_or_else(|| missing("rows"))?,
            cols: cols.ok_or_else(|| missing("cols"))?,
            chunk_size: chunk_size.ok_or_else(|| missing("chunk_size"))?,
        })
    }

    /// Number of chunks per hop file (last chunk may be partial).
    pub fn num_chunks(&self) -> usize {
        if self.rows == 0 {
            0
        } else {
            self.rows.div_ceil(self.chunk_size)
        }
    }

    /// Total stored bytes across all hop files (payload only).
    pub fn total_bytes(&self) -> u64 {
        (self.num_hops * self.rows * self.cols * 4) as u64
    }
}

/// Which copy path a read takes (GPUDirect analog vs host bounce buffer).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessPath {
    /// Storage → device buffer directly (NVIDIA GDS analog).
    Direct,
    /// Storage → host staging buffer → device buffer.
    HostBounce,
}

/// Byte/request accounting for one reader.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IoCounters {
    /// Sequential (chunk) read requests issued.
    pub seq_requests: u64,
    /// Bytes read sequentially.
    pub seq_bytes: u64,
    /// Random (row) read requests issued.
    pub rand_requests: u64,
    /// Bytes read randomly.
    pub rand_bytes: u64,
    /// Extra bytes copied through the host bounce buffer.
    pub bounce_bytes: u64,
}

impl IoCounters {
    /// Total bytes read from storage.
    pub fn total_bytes(&self) -> u64 {
        self.seq_bytes + self.rand_bytes
    }

    /// Adds `other`'s counts into `self` — used to aggregate counters
    /// across the partition stores of a sharded store.
    pub fn accumulate(&mut self, other: &IoCounters) {
        self.seq_requests += other.seq_requests;
        self.seq_bytes += other.seq_bytes;
        self.rand_requests += other.rand_requests;
        self.rand_bytes += other.rand_bytes;
        self.bounce_bytes += other.bounce_bytes;
    }
}

/// Writes a feature store to a directory: `manifest.txt` + one
/// `hop_<k>.ppgt` file per hop.
#[derive(Debug)]
pub struct FeatureStoreWriter {
    dir: PathBuf,
    meta: StoreMeta,
    written: Vec<bool>,
}

impl FeatureStoreWriter {
    /// Creates the directory (if needed) and writes the manifest.
    ///
    /// # Errors
    ///
    /// Fails if the directory cannot be created or the manifest cannot be
    /// written, or if `meta` has a zero chunk size.
    pub fn create(dir: impl AsRef<Path>, meta: StoreMeta) -> Result<Self, DataIoError> {
        if meta.chunk_size == 0 {
            return Err(DataIoError::BadManifest(
                "chunk_size must be positive".into(),
            ));
        }
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        fs::write(dir.join(MANIFEST), meta.to_manifest())?;
        Ok(FeatureStoreWriter {
            written: vec![false; meta.num_hops],
            dir,
            meta,
        })
    }

    /// Writes hop `k`'s feature matrix to its own file.
    ///
    /// # Errors
    ///
    /// Fails if `k` is out of range, the matrix shape disagrees with the
    /// manifest, or I/O fails.
    pub fn write_hop(&mut self, k: usize, features: &Matrix) -> Result<(), DataIoError> {
        if k >= self.meta.num_hops {
            return Err(DataIoError::OutOfRange(format!(
                "hop {k} out of range ({} hops)",
                self.meta.num_hops
            )));
        }
        if features.shape() != (self.meta.rows, self.meta.cols) {
            return Err(DataIoError::BadManifest(format!(
                "hop {k} shape {:?} disagrees with manifest ({}, {})",
                features.shape(),
                self.meta.rows,
                self.meta.cols
            )));
        }
        let file = File::create(hop_path(&self.dir, k))?;
        let mut w = BufWriter::new(file);
        tio::write_matrix(&mut w, features).map_err(|e| DataIoError::Io(e.to_string()))?;
        w.flush()?;
        self.written[k] = true;
        Ok(())
    }

    /// Finishes writing, verifying every hop was stored.
    ///
    /// # Errors
    ///
    /// Fails listing the missing hops if any were never written.
    pub fn finish(self) -> Result<FeatureStore, DataIoError> {
        let missing: Vec<usize> = self
            .written
            .iter()
            .enumerate()
            .filter(|(_, &w)| !w)
            .map(|(k, _)| k)
            .collect();
        if !missing.is_empty() {
            return Err(DataIoError::BadManifest(format!(
                "hops never written: {missing:?}"
            )));
        }
        FeatureStore::open(&self.dir)
    }
}

fn hop_path(dir: &Path, k: usize) -> PathBuf {
    dir.join(format!("hop_{k}.ppgt"))
}

/// Read handle over a feature-store directory with I/O accounting.
#[derive(Debug)]
pub struct FeatureStore {
    dir: PathBuf,
    meta: StoreMeta,
    counters: IoCounters,
}

impl FeatureStore {
    /// Opens a store, validating the manifest and each hop file's header.
    ///
    /// # Errors
    ///
    /// Fails on missing/corrupt manifest, missing hop files, or header
    /// shapes that disagree with the manifest.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, DataIoError> {
        let dir = dir.as_ref().to_path_buf();
        let text = fs::read_to_string(dir.join(MANIFEST))
            .map_err(|e| DataIoError::Io(format!("{}: {e}", dir.display())))?;
        let meta = StoreMeta::from_manifest(&text)?;
        for k in 0..meta.num_hops {
            let mut f = File::open(hop_path(&dir, k))
                .map_err(|e| DataIoError::Io(format!("hop {k}: {e}")))?;
            let (rows, cols) =
                tio::read_header(&mut f).map_err(|e| DataIoError::Corrupt(e.to_string()))?;
            if (rows, cols) != (meta.rows, meta.cols) {
                return Err(DataIoError::Corrupt(format!(
                    "hop {k} header ({rows},{cols}) disagrees with manifest ({},{})",
                    meta.rows, meta.cols
                )));
            }
            // validate payload length without reading it
            let expected = tio::HEADER_BYTES as u64 + (rows * cols * 4) as u64;
            let actual = f.metadata()?.len();
            if actual < expected {
                return Err(DataIoError::Corrupt(format!(
                    "hop {k} file truncated: {actual} < {expected} bytes"
                )));
            }
        }
        Ok(FeatureStore {
            dir,
            meta,
            counters: IoCounters::default(),
        })
    }

    /// Store metadata.
    pub fn meta(&self) -> &StoreMeta {
        &self.meta
    }

    /// Accumulated I/O counters.
    pub fn counters(&self) -> IoCounters {
        self.counters
    }

    /// Resets the I/O counters (between measured epochs).
    pub fn reset_counters(&mut self) {
        self.counters = IoCounters::default();
    }

    /// Randomly reads individual `rows` of hop `k` — the SGD-RR storage
    /// access pattern (one request per row).
    ///
    /// # Errors
    ///
    /// Fails if `k` or any row index is out of range, or on I/O errors.
    pub fn read_rows(
        &mut self,
        k: usize,
        rows: &[usize],
        path: AccessPath,
    ) -> Result<Matrix, DataIoError> {
        self.check_hop(k)?;
        let row_bytes = self.meta.cols * 4;
        let mut file = File::open(hop_path(&self.dir, k))?;
        let mut out = Matrix::zeros(rows.len(), self.meta.cols);
        let mut buf = vec![0u8; row_bytes];
        for (i, &r) in rows.iter().enumerate() {
            if r >= self.meta.rows {
                return Err(DataIoError::OutOfRange(format!(
                    "row {r} out of range ({} rows)",
                    self.meta.rows
                )));
            }
            let offset = tio::HEADER_BYTES as u64 + (r * row_bytes) as u64;
            file.seek(SeekFrom::Start(offset))?;
            file.read_exact(&mut buf)?;
            for (j, chunk) in buf.chunks_exact(4).enumerate() {
                out.set(
                    i,
                    j,
                    f32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]),
                );
            }
            self.counters.rand_requests += 1;
            self.counters.rand_bytes += row_bytes as u64;
            if path == AccessPath::HostBounce {
                self.counters.bounce_bytes += row_bytes as u64;
            }
        }
        Ok(out)
    }

    /// Sequentially reads chunk `chunk_id` of hop `k` (one request) — the
    /// chunk-reshuffling access pattern. The final chunk may be short.
    ///
    /// # Errors
    ///
    /// Fails if `k` or `chunk_id` is out of range, or on I/O errors.
    pub fn read_chunk(
        &mut self,
        k: usize,
        chunk_id: usize,
        path: AccessPath,
    ) -> Result<Matrix, DataIoError> {
        self.check_hop(k)?;
        let num_chunks = self.meta.num_chunks();
        if chunk_id >= num_chunks {
            return Err(DataIoError::OutOfRange(format!(
                "chunk {chunk_id} out of range ({num_chunks} chunks)"
            )));
        }
        let start_row = chunk_id * self.meta.chunk_size;
        let rows = self.meta.chunk_size.min(self.meta.rows - start_row);
        let row_bytes = self.meta.cols * 4;
        let mut file = File::open(hop_path(&self.dir, k))?;
        let offset = tio::HEADER_BYTES as u64 + (start_row * row_bytes) as u64;
        file.seek(SeekFrom::Start(offset))?;
        let mut bytes = vec![0u8; rows * row_bytes];
        file.read_exact(&mut bytes)?;
        let data: Vec<f32> = bytes
            .chunks_exact(4)
            .map(|b| f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
            .collect();
        self.counters.seq_requests += 1;
        self.counters.seq_bytes += (rows * row_bytes) as u64;
        if path == AccessPath::HostBounce {
            self.counters.bounce_bytes += (rows * row_bytes) as u64;
        }
        Matrix::from_vec(rows, self.meta.cols, data)
            .map_err(|e| DataIoError::Corrupt(e.to_string()))
    }

    /// Reads chunk `chunk_id` across **all** hops (one request per hop file,
    /// the parallel-file layout of Section 4.3). The chunk-id bounds check
    /// happens up front, so an out-of-range request fails before any
    /// counter is touched — consistent with [`FeatureStore::read_rows`]'s
    /// count-as-you-read behaviour, where nothing valid precedes the error.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`FeatureStore::read_chunk`].
    pub fn read_chunk_all_hops(
        &mut self,
        chunk_id: usize,
        path: AccessPath,
    ) -> Result<Vec<Matrix>, DataIoError> {
        if chunk_id >= self.meta.num_chunks() {
            return Err(DataIoError::OutOfRange(format!(
                "chunk {chunk_id} out of range ({} chunks)",
                self.meta.num_chunks()
            )));
        }
        (0..self.meta.num_hops)
            .map(|k| self.read_chunk(k, chunk_id, path))
            .collect()
    }

    /// Reads an entire hop matrix (preloading path), counting one
    /// sequential request over the [`AccessPath::Direct`] path.
    ///
    /// # Errors
    ///
    /// Fails if `k` is out of range or the payload is corrupt.
    pub fn read_full_hop(&mut self, k: usize) -> Result<Matrix, DataIoError> {
        self.read_full_hop_via(k, AccessPath::Direct)
    }

    /// [`FeatureStore::read_full_hop`] with an explicit access path, so
    /// full-hop preloads account bounce-buffer copies the same way
    /// [`FeatureStore::read_rows`] and [`FeatureStore::read_chunk`] do:
    /// one sequential request, payload bytes, plus `bounce_bytes` when the
    /// read goes through the host staging buffer.
    ///
    /// # Errors
    ///
    /// Fails if `k` is out of range or the payload is corrupt.
    pub fn read_full_hop_via(&mut self, k: usize, path: AccessPath) -> Result<Matrix, DataIoError> {
        self.check_hop(k)?;
        let mut f = File::open(hop_path(&self.dir, k))?;
        let m = tio::read_matrix(&mut f).map_err(|e| DataIoError::Corrupt(e.to_string()))?;
        self.counters.seq_requests += 1;
        self.counters.seq_bytes += m.size_bytes() as u64;
        if path == AccessPath::HostBounce {
            self.counters.bounce_bytes += m.size_bytes() as u64;
        }
        Ok(m)
    }

    fn check_hop(&self, k: usize) -> Result<(), DataIoError> {
        if k >= self.meta.num_hops {
            return Err(DataIoError::OutOfRange(format!(
                "hop {k} out of range ({} hops)",
                self.meta.num_hops
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ppgnn-store-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample_meta() -> StoreMeta {
        StoreMeta {
            dataset: "test".into(),
            num_hops: 3,
            rows: 10,
            cols: 4,
            chunk_size: 4,
        }
    }

    fn build_store(dir: &Path) -> FeatureStore {
        let meta = sample_meta();
        let mut w = FeatureStoreWriter::create(dir, meta).unwrap();
        for k in 0..3 {
            let m = Matrix::from_fn(10, 4, |r, c| (k * 1000 + r * 10 + c) as f32);
            w.write_hop(k, &m).unwrap();
        }
        w.finish().unwrap()
    }

    #[test]
    fn round_trip_rows_and_chunks() {
        let dir = temp_dir("roundtrip");
        let mut store = build_store(&dir);
        // random rows
        let rows = store.read_rows(1, &[7, 0, 3], AccessPath::Direct).unwrap();
        assert_eq!(rows.get(0, 2), 1072.0);
        assert_eq!(rows.get(1, 0), 1000.0);
        // chunk 1 = rows 4..8
        let chunk = store.read_chunk(2, 1, AccessPath::Direct).unwrap();
        assert_eq!(chunk.rows(), 4);
        assert_eq!(chunk.get(0, 0), 2040.0);
        // last chunk is short: rows 8..10
        let last = store.read_chunk(0, 2, AccessPath::Direct).unwrap();
        assert_eq!(last.rows(), 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn counters_distinguish_access_patterns() {
        let dir = temp_dir("counters");
        let mut store = build_store(&dir);
        store.read_rows(0, &[1, 2, 3], AccessPath::Direct).unwrap();
        let c = store.counters();
        assert_eq!(c.rand_requests, 3);
        assert_eq!(c.rand_bytes, 3 * 16);
        assert_eq!(c.seq_requests, 0);
        assert_eq!(c.bounce_bytes, 0);

        store.reset_counters();
        store
            .read_chunk_all_hops(0, AccessPath::HostBounce)
            .unwrap();
        let c = store.counters();
        assert_eq!(c.seq_requests, 3); // one per hop file
        assert_eq!(c.seq_bytes, 3 * 4 * 16);
        assert_eq!(c.bounce_bytes, c.seq_bytes);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn chunked_reads_issue_far_fewer_requests_than_row_reads() {
        // the quantitative heart of Section 4.3
        let dir = temp_dir("requests");
        let mut store = build_store(&dir);
        let all: Vec<usize> = (0..10).collect();
        store.read_rows(0, &all, AccessPath::Direct).unwrap();
        let rand_reqs = store.counters().rand_requests;
        store.reset_counters();
        for c in 0..store.meta().num_chunks() {
            store.read_chunk(0, c, AccessPath::Direct).unwrap();
        }
        let seq_reqs = store.counters().seq_requests;
        assert!(seq_reqs * 3 <= rand_reqs, "{seq_reqs} vs {rand_reqs}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_rejects_truncated_files() {
        let dir = temp_dir("truncated");
        build_store(&dir);
        // truncate hop 1
        let path = dir.join("hop_1.ppgt");
        let full = fs::read(&path).unwrap();
        fs::write(&path, &full[..full.len() - 10]).unwrap();
        let err = FeatureStore::open(&dir).unwrap_err();
        assert!(matches!(err, DataIoError::Corrupt(_)), "{err}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_rejects_bad_manifest() {
        let dir = temp_dir("manifest");
        build_store(&dir);
        fs::write(dir.join(MANIFEST), "dataset=x\nnum_hops=nope\n").unwrap();
        assert!(matches!(
            FeatureStore::open(&dir),
            Err(DataIoError::BadManifest(_))
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn writer_refuses_wrong_shapes_and_incomplete_stores() {
        let dir = temp_dir("writer");
        let mut w = FeatureStoreWriter::create(&dir, sample_meta()).unwrap();
        assert!(matches!(
            w.write_hop(0, &Matrix::zeros(5, 4)),
            Err(DataIoError::BadManifest(_))
        ));
        assert!(matches!(
            w.write_hop(9, &Matrix::zeros(10, 4)),
            Err(DataIoError::OutOfRange(_))
        ));
        w.write_hop(0, &Matrix::zeros(10, 4)).unwrap();
        let err = w.finish().unwrap_err();
        assert!(err.to_string().contains("never written"), "{err}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn out_of_range_requests_fail_cleanly() {
        let dir = temp_dir("range");
        let mut store = build_store(&dir);
        assert!(store.read_rows(0, &[99], AccessPath::Direct).is_err());
        assert!(store.read_chunk(0, 99, AccessPath::Direct).is_err());
        assert!(store.read_chunk(9, 0, AccessPath::Direct).is_err());
        assert!(store.read_full_hop(9).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn full_hop_read_matches_written_matrix() {
        let dir = temp_dir("full");
        let mut store = build_store(&dir);
        let m = store.read_full_hop(1).unwrap();
        assert_eq!(m.shape(), (10, 4));
        assert_eq!(m.get(9, 3), 1093.0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn manifest_round_trips_and_ignores_unknown_keys() {
        let meta = sample_meta();
        let mut text = meta.to_manifest();
        text.push_str("future_key=whatever\n");
        let parsed = StoreMeta::from_manifest(&text).unwrap();
        assert_eq!(parsed, meta);
        assert_eq!(parsed.num_chunks(), 3);
        assert_eq!(parsed.total_bytes(), 3 * 10 * 4 * 4);
    }
}
